package sim

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/dispatch"
	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/match"
	"repro/internal/partition"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// world bundles a small deterministic test world.
type world struct {
	g   *roadnet.Graph
	spx *roadnet.SpatialIndex
	pt  *partition.Partitioning
	ds  *trace.Dataset
}

func newWorld(t testing.TB) *world {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.DefaultCityParams(14, 14))
	if err != nil {
		t.Fatal(err)
	}
	spx := roadnet.NewSpatialIndex(g, 250)
	min, max := g.Bounds()
	center := geo.Midpoint(min, max)
	extent := geo.Equirect(geo.Point{Lat: min.Lat, Lng: min.Lng}, geo.Point{Lat: min.Lat, Lng: max.Lng})
	ds, err := trace.Generate(trace.Workday, trace.GenParams{
		Center: center, ExtentMeters: extent, TripsPerHourPeak: 120,
		UniformFrac: 0.15, MinTripMeters: 250, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]struct{ Origin, Dest geo.Point }, len(ds.Trips))
	for i, tr := range ds.Trips {
		pairs[i] = struct{ Origin, Dest geo.Point }{tr.Origin, tr.Dest}
	}
	params := partition.DefaultParams(12)
	params.KTrans = 5
	pt, err := partition.BuildBipartite(g, partition.SnapTrips(spx, pairs), params)
	if err != nil {
		t.Fatal(err)
	}
	return &world{g: g, spx: spx, pt: pt, ds: ds}
}

func (w *world) mtShare(t testing.TB, probabilistic bool) dispatch.Scheme {
	t.Helper()
	cfg := match.DefaultConfig()
	cfg.SearchRangeMeters = 2500
	e, err := match.NewEngine(w.pt, w.spx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return match.NewScheme(e, probabilistic)
}

// peakRequests prepares one peak hour of requests at the given scale.
func (w *world) peakRequests(t testing.TB, offlineFrac float64) []*fleet.Request {
	t.Helper()
	trips := w.ds.Between(8*time.Hour, 9*time.Hour)
	reqs := PrepareRequests(w.g, w.spx, trips, PrepareOptions{
		SpeedMps: 15.0 * 1000 / 3600, Rho: 1.3, OfflineFrac: offlineFrac, Seed: 7,
	})
	if len(reqs) < 50 {
		t.Fatalf("only %d requests prepared", len(reqs))
	}
	return reqs
}

func runScheme(t testing.TB, w *world, scheme dispatch.Scheme, reqs []*fleet.Request, taxis int) *Metrics {
	t.Helper()
	eng, err := NewEngine(w.g, scheme, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	start := 8 * 3600.0
	eng.PlaceTaxis(taxis, 3, 1, start)
	return eng.Run(reqs, start)
}

func TestPrepareRequests(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0.3)
	offline := 0
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if r.Offline {
			offline++
		}
		if r.Deadline <= r.ReleaseAt {
			t.Fatal("deadline not after release")
		}
		// Deadline encodes rho=1.3.
		direct := r.DirectSeconds(15.0 * 1000 / 3600)
		want := r.ReleaseAt.Seconds() + direct*1.3
		if diff := want - r.Deadline.Seconds(); diff > 1 || diff < -1 {
			t.Fatalf("deadline off by %v s", diff)
		}
	}
	frac := float64(offline) / float64(len(reqs))
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("offline fraction %v, want ~0.3", frac)
	}
}

func TestSimMTShareServesRequests(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0)
	m := runScheme(t, w, w.mtShare(t, false), reqs, 40)
	if m.SchemeName != "mT-Share" {
		t.Fatalf("scheme name %q", m.SchemeName)
	}
	if m.Requests != len(reqs) {
		t.Fatalf("requests = %d, want %d", m.Requests, len(reqs))
	}
	if m.Served == 0 {
		t.Fatal("no requests served")
	}
	if m.Delivered != m.Served {
		t.Fatalf("delivered %d != served %d after drain", m.Delivered, m.Served)
	}
	if m.ServedOffline != 0 {
		t.Fatal("offline served in online-only run")
	}
	if m.MeanResponseMs <= 0 {
		t.Fatal("response time not measured")
	}
	if m.MeanWaitingMin < 0 || m.MeanWaitingMin > 15 {
		t.Fatalf("waiting = %v min", m.MeanWaitingMin)
	}
	if m.MeanDetourMin < 0 {
		t.Fatalf("detour = %v", m.MeanDetourMin)
	}
	if m.IndexMemoryBytes <= 0 {
		t.Fatal("index memory missing")
	}
}

func TestSimDeadlinesRespected(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0)
	m := runScheme(t, w, w.mtShare(t, false), reqs, 40)
	speed := 15.0 * 1000 / 3600
	for _, rec := range m.Records {
		if !rec.Delivered {
			continue
		}
		if rec.DropoffSeconds > rec.Req.Deadline.Seconds()+1 {
			t.Fatalf("request %d delivered %.0fs past deadline",
				rec.Req.ID, rec.DropoffSeconds-rec.Req.Deadline.Seconds())
		}
		if rec.PickupSeconds > rec.Req.PickupDeadline(speed).Seconds()+1 {
			t.Fatalf("request %d picked up past pickup deadline", rec.Req.ID)
		}
		if rec.PickupSeconds < rec.Req.ReleaseAt.Seconds()-1 {
			t.Fatalf("request %d picked up before release", rec.Req.ID)
		}
		if rec.SharedMeters() < rec.Req.DirectMeters-1 {
			t.Fatalf("request %d rode %.0fm < direct %.0fm",
				rec.Req.ID, rec.SharedMeters(), rec.Req.DirectMeters)
		}
	}
}

func TestSimRidesharingBeatsNoSharing(t *testing.T) {
	w := newWorld(t)
	// Scarce supply and a roomier deadline factor so shared capacity is
	// the binding resource (at the unit-test scale γ covers the whole toy
	// city, which hides mT-Share's arrival-time index advantage; the
	// experiment harness exercises that at proper scale).
	trips := w.ds.Between(8*time.Hour, 9*time.Hour)
	reqs := PrepareRequests(w.g, w.spx, trips, PrepareOptions{
		SpeedMps: 15.0 * 1000 / 3600, Rho: 1.5, Seed: 7,
	})
	taxis := 25
	mNo := runScheme(t, w, baseline.NewNoSharing(w.g, baseline.DefaultConfig()), cloneReqs(reqs), taxis)
	mMt := runScheme(t, w, w.mtShare(t, false), cloneReqs(reqs), taxis)
	if mMt.Served <= mNo.Served {
		t.Fatalf("mT-Share served %d <= No-Sharing %d", mMt.Served, mNo.Served)
	}
	// No-Sharing must have zero detour by construction.
	if mNo.MeanDetourMin > 0.05 {
		t.Fatalf("No-Sharing detour = %v min", mNo.MeanDetourMin)
	}
}

// cloneReqs deep-copies requests so each run gets fresh state.
func cloneReqs(reqs []*fleet.Request) []*fleet.Request {
	out := make([]*fleet.Request, len(reqs))
	for i, r := range reqs {
		c := *r
		out[i] = &c
	}
	return out
}

func TestSimBaselinesServe(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0)
	for _, s := range []dispatch.Scheme{
		baseline.NewTShare(w.g, baseline.DefaultConfig()),
		baseline.NewPGreedyDP(w.g, baseline.DefaultConfig()),
	} {
		m := runScheme(t, w, s, cloneReqs(reqs), 40)
		if m.Served == 0 {
			t.Fatalf("%s served nothing", s.Name())
		}
		if m.Delivered != m.Served {
			t.Fatalf("%s: delivered %d != served %d", s.Name(), m.Delivered, m.Served)
		}
	}
}

func TestSimOfflineRequestsServedByEncounter(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0.4)
	m := runScheme(t, w, w.mtShare(t, true), reqs, 50)
	if m.OfflineRequests == 0 {
		t.Fatal("no offline requests in workload")
	}
	if m.ServedOffline == 0 {
		t.Fatal("no offline requests served")
	}
	// Offline served must have been delivered within deadlines too.
	for _, rec := range m.Records {
		if rec.ServedOffline && rec.Delivered {
			if rec.DropoffSeconds > rec.Req.Deadline.Seconds()+1 {
				t.Fatal("offline request delivered past deadline")
			}
		}
	}
}

func TestSimProbabilisticServesMoreOffline(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0.4)
	plain := runScheme(t, w, w.mtShare(t, false), cloneReqs(reqs), 40)
	pro := runScheme(t, w, w.mtShare(t, true), cloneReqs(reqs), 40)
	if pro.ServedOffline < plain.ServedOffline {
		t.Fatalf("probabilistic served fewer offline: %d vs %d",
			pro.ServedOffline, plain.ServedOffline)
	}
}

func TestSimPaymentAggregates(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0)
	m := runScheme(t, w, w.mtShare(t, false), reqs, 40)
	if m.TotalRegularFare <= 0 || m.TotalPaid <= 0 {
		t.Fatalf("fares not settled: paid=%v regular=%v", m.TotalPaid, m.TotalRegularFare)
	}
	if m.TotalPaid > m.TotalRegularFare+1e-6 {
		t.Fatal("passengers paid more than regular in aggregate")
	}
	if m.FareSaving < 0 || m.FareSaving > 0.5 {
		t.Fatalf("fare saving = %v", m.FareSaving)
	}
	if m.DriverIncome <= 0 {
		t.Fatal("driver income missing")
	}
	// Per-ride: no one pays more than their regular fare.
	for _, rec := range m.Records {
		if rec.Delivered && rec.PaidFare > rec.RegularFare+1e-6 {
			t.Fatalf("request %d paid %v > regular %v", rec.Req.ID, rec.PaidFare, rec.RegularFare)
		}
	}
}

func TestSimTerminates(t *testing.T) {
	// Even with zero taxis the run must end (nothing served).
	w := newWorld(t)
	reqs := w.peakRequests(t, 0.2)
	eng, err := NewEngine(w.g, w.mtShare(t, false), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m := eng.Run(reqs, 8*3600)
	if m.Served != 0 {
		t.Fatal("served without taxis")
	}
	if m.Requests != len(reqs) {
		t.Fatal("request accounting wrong")
	}
}

func TestSimParamsValidate(t *testing.T) {
	bad := []Params{
		{SpeedMps: 0, TickSeconds: 1},
		{SpeedMps: 1, TickSeconds: 0},
		{SpeedMps: 1, TickSeconds: 1, EncounterRadiusMeters: -1},
		{SpeedMps: 1, TickSeconds: 1, MaxDrainSeconds: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	w := newWorld(t)
	if _, err := NewEngine(w.g, w.mtShare(t, false), Params{}); err == nil {
		t.Error("zero params accepted")
	}
}

func TestSimCandidateAccountingTable3Order(t *testing.T) {
	// pGreedyDP examines at least as many candidates as T-Share on the
	// same workload (Table III's ordering).
	w := newWorld(t)
	reqs := w.peakRequests(t, 0)
	mT := runScheme(t, w, baseline.NewTShare(w.g, baseline.DefaultConfig()), cloneReqs(reqs), 40)
	mP := runScheme(t, w, baseline.NewPGreedyDP(w.g, baseline.DefaultConfig()), cloneReqs(reqs), 40)
	if mP.MeanCandidates < mT.MeanCandidates {
		t.Fatalf("candidates: pGreedyDP %v < T-Share %v", mP.MeanCandidates, mT.MeanCandidates)
	}
}

func BenchmarkSimPeakHourMTShare(b *testing.B) {
	w := newWorld(b)
	reqs := w.peakRequests(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		scheme := w.mtShare(b, false)
		eng, err := NewEngine(w.g, scheme, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		eng.PlaceTaxis(40, 3, 1, 8*3600)
		fresh := cloneReqs(reqs)
		b.StartTimer()
		eng.Run(fresh, 8*3600)
	}
}

func TestSimFleetEfficiencyMetrics(t *testing.T) {
	w := newWorld(t)
	reqs := w.peakRequests(t, 0)
	m := runScheme(t, w, w.mtShare(t, false), reqs, 40)
	if m.TaxiMeters <= 0 {
		t.Fatal("no taxi movement recorded")
	}
	if m.PassengerMeters <= 0 {
		t.Fatal("no passenger distance recorded")
	}
	if m.OccupiedFraction <= 0 || m.OccupiedFraction > 1 {
		t.Fatalf("OccupiedFraction = %v", m.OccupiedFraction)
	}
	if m.MeanOccupancy <= 0 {
		t.Fatalf("MeanOccupancy = %v", m.MeanOccupancy)
	}
	// Passengers cannot ride farther than taxis drove times capacity.
	if m.PassengerMeters > m.TaxiMeters*3 {
		t.Fatalf("passenger meters %v exceed capacity x taxi meters %v", m.PassengerMeters, m.TaxiMeters)
	}
}

func TestSimSharingRaisesOccupancy(t *testing.T) {
	w := newWorld(t)
	trips := w.ds.Between(8*time.Hour, 9*time.Hour)
	reqs := PrepareRequests(w.g, w.spx, trips, PrepareOptions{
		SpeedMps: 15.0 * 1000 / 3600, Rho: 1.5, Seed: 7,
	})
	taxis := 20
	mNo := runScheme(t, w, baseline.NewNoSharing(w.g, baseline.DefaultConfig()), cloneReqs(reqs), taxis)
	mMt := runScheme(t, w, w.mtShare(t, false), cloneReqs(reqs), taxis)
	if mMt.MeanOccupancy <= mNo.MeanOccupancy {
		t.Fatalf("sharing occupancy %v not above solo %v", mMt.MeanOccupancy, mNo.MeanOccupancy)
	}
}

func TestPrepareRequestsPartySizes(t *testing.T) {
	w := newWorld(t)
	trips := w.ds.Between(8*time.Hour, 9*time.Hour)
	reqs := PrepareRequests(w.g, w.spx, trips, PrepareOptions{
		SpeedMps: 15.0 * 1000 / 3600, Rho: 1.3, Seed: 7,
		PartySizes: []float64{0.6, 0.3, 0.1},
	})
	counts := map[int]int{}
	for _, r := range reqs {
		if r.Passengers < 1 || r.Passengers > 3 {
			t.Fatalf("party size %d out of range", r.Passengers)
		}
		counts[r.Passengers]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[3] {
		t.Fatalf("party distribution not monotone: %v", counts)
	}
	// Capacity constraint must bind: a 3-passenger party never shares a
	// 3-seat taxi with anyone else.
	m := runScheme(t, w, w.mtShare(t, false), reqs, 40)
	for _, rec := range m.Records {
		if rec.Delivered && rec.Req.Passengers == 3 {
			return // at least one large party was served; good enough
		}
	}
}
