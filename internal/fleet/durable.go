// Durable state: deterministic, JSON-serializable captures of requests
// and taxis for the WAL snapshot layer. Capture records exactly the
// fields whose values cannot be recomputed (positions, progress,
// schedules, seat/odometer accounting, membership); restore rebuilds the
// derived ones (edge costs) from the graph, so a restored taxi is
// field-for-field identical to the captured one. Float fields round-trip
// exactly through encoding/json's shortest-form encoding.
package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// RequestState is the serializable form of a Request.
type RequestState struct {
	ID             int64     `json:"id"`
	ReleaseAtNanos int64     `json:"release_at"`
	Origin         int64     `json:"origin"`
	Dest           int64     `json:"dest"`
	DeadlineNanos  int64     `json:"deadline"`
	DirectMeters   float64   `json:"direct_m"`
	Passengers     int       `json:"passengers"`
	Offline        bool      `json:"offline,omitempty"`
	OriginPt       geo.Point `json:"origin_pt"`
	DestPt         geo.Point `json:"dest_pt"`
}

// CaptureRequest serializes a request.
func CaptureRequest(r *Request) RequestState {
	return RequestState{
		ID:             int64(r.ID),
		ReleaseAtNanos: int64(r.ReleaseAt),
		Origin:         int64(r.Origin),
		Dest:           int64(r.Dest),
		DeadlineNanos:  int64(r.Deadline),
		DirectMeters:   r.DirectMeters,
		Passengers:     r.Passengers,
		Offline:        r.Offline,
		OriginPt:       r.OriginPt,
		DestPt:         r.DestPt,
	}
}

// RestoreRequest rebuilds a request from its serialized form.
func RestoreRequest(st RequestState) *Request {
	return &Request{
		ID:           RequestID(st.ID),
		ReleaseAt:    time.Duration(st.ReleaseAtNanos),
		Origin:       roadnet.VertexID(st.Origin),
		Dest:         roadnet.VertexID(st.Dest),
		Deadline:     time.Duration(st.DeadlineNanos),
		DirectMeters: st.DirectMeters,
		Passengers:   st.Passengers,
		Offline:      st.Offline,
		OriginPt:     st.OriginPt,
		DestPt:       st.DestPt,
	}
}

// ScheduleEntry is one pending schedule event, identified by request and
// kind; the request body itself lives in the snapshot's request table.
type ScheduleEntry struct {
	Req    int64 `json:"req"`
	Pickup bool  `json:"pickup,omitempty"`
}

// TaxiState is the serializable form of a Taxi. The plan is stored
// trimmed to its remaining suffix: Path is the polyline from the current
// position, EventPos indexes into it, and already-fired schedule events
// are dropped, so a restored taxi resumes at pos 0 with identical
// remaining motion. Edge costs are recomputed from the graph on restore.
type TaxiState struct {
	ID       int64           `json:"id"`
	Capacity int             `json:"capacity"`
	Path     []int64         `json:"path,omitempty"`
	Offset   float64         `json:"offset,omitempty"`
	Schedule []ScheduleEntry `json:"schedule,omitempty"`
	EventPos []int           `json:"event_pos,omitempty"`
	IdleAt   int64           `json:"idle_at"`
	Seats    int             `json:"seats,omitempty"`
	Odometer float64         `json:"odometer,omitempty"`
	Waiting  []int64         `json:"waiting,omitempty"`
	Onboard  []int64         `json:"onboard,omitempty"`
}

func sortedRequestIDs(m map[RequestID]*Request) []int64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]int64, 0, len(m))
	for id := range m {
		out = append(out, int64(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DurableState serializes the taxi.
func (t *Taxi) DurableState() TaxiState {
	st := TaxiState{
		ID:       t.ID,
		Capacity: t.Capacity,
		IdleAt:   int64(t.idleAt),
		Seats:    t.seats,
		Odometer: t.odometer,
		Waiting:  sortedRequestIDs(t.waiting),
		Onboard:  sortedRequestIDs(t.onboard),
	}
	if len(t.path) > 0 {
		rem := t.path[t.pos:]
		st.Path = make([]int64, len(rem))
		for i, v := range rem {
			st.Path[i] = int64(v)
		}
		st.Offset = t.offset
	}
	if t.nextEvent < len(t.schedule) {
		for k := t.nextEvent; k < len(t.schedule); k++ {
			kind := t.schedule[k].Kind == Pickup
			st.Schedule = append(st.Schedule, ScheduleEntry{Req: int64(t.schedule[k].Req.ID), Pickup: kind})
			st.EventPos = append(st.EventPos, t.eventPos[k]-t.pos)
		}
	}
	return st
}

// RestoreTaxi rebuilds a taxi from its serialized form. resolve maps
// request IDs to the (already restored) shared Request objects so that
// schedule, waiting, and onboard references alias the same instances the
// engine holds.
func RestoreTaxi(g *roadnet.Graph, st TaxiState, resolve func(RequestID) (*Request, bool)) (*Taxi, error) {
	t := NewTaxi(g, st.ID, st.Capacity, roadnet.VertexID(st.IdleAt))
	t.seats = st.Seats
	t.odometer = st.Odometer
	for _, id := range st.Waiting {
		r, ok := resolve(RequestID(id))
		if !ok {
			return nil, fmt.Errorf("fleet: taxi %d: unknown waiting request %d", st.ID, id)
		}
		t.waiting[RequestID(id)] = r
	}
	for _, id := range st.Onboard {
		r, ok := resolve(RequestID(id))
		if !ok {
			return nil, fmt.Errorf("fleet: taxi %d: unknown onboard request %d", st.ID, id)
		}
		t.onboard[RequestID(id)] = r
	}
	if len(st.Schedule) != len(st.EventPos) {
		return nil, fmt.Errorf("fleet: taxi %d: %d schedule entries, %d positions", st.ID, len(st.Schedule), len(st.EventPos))
	}
	if len(st.Path) > 0 {
		path := make([]roadnet.VertexID, len(st.Path))
		for i, v := range st.Path {
			path[i] = roadnet.VertexID(v)
		}
		costs := make([]float64, len(path)-1)
		for i := 0; i+1 < len(path); i++ {
			c, ok := g.EdgeCost(path[i], path[i+1])
			if !ok {
				return nil, fmt.Errorf("fleet: taxi %d: restored plan uses missing edge (%d,%d)", st.ID, path[i], path[i+1])
			}
			costs[i] = c
		}
		if st.Offset < 0 || (len(costs) > 0 && st.Offset >= costs[0]) || (len(costs) == 0 && st.Offset != 0) {
			return nil, fmt.Errorf("fleet: taxi %d: offset %v out of range", st.ID, st.Offset)
		}
		t.path = path
		t.costs = costs
		t.offset = st.Offset
	} else if len(st.Schedule) > 0 {
		return nil, fmt.Errorf("fleet: taxi %d: schedule without a path", st.ID)
	}
	for i, e := range st.Schedule {
		r, ok := resolve(RequestID(e.Req))
		if !ok {
			return nil, fmt.Errorf("fleet: taxi %d: unknown scheduled request %d", st.ID, e.Req)
		}
		kind := Dropoff
		if e.Pickup {
			kind = Pickup
		}
		p := st.EventPos[i]
		if p < 0 || p >= len(t.path) {
			return nil, fmt.Errorf("fleet: taxi %d: event position %d outside path", st.ID, p)
		}
		if i > 0 && p < st.EventPos[i-1] {
			return nil, fmt.Errorf("fleet: taxi %d: event positions decrease", st.ID)
		}
		t.schedule = append(t.schedule, Event{Req: r, Kind: kind})
		t.eventPos = append(t.eventPos, p)
	}
	return t, nil
}
