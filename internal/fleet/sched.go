package fleet

import (
	"math"

	"repro/internal/roadnet"
)

// LegCoster returns the travel cost in meters of a route leg between two
// vertices, and whether a route exists. mT-Share plugs in its
// partition-filtered routing; baselines use plain shortest paths.
type LegCoster func(u, v roadnet.VertexID) (float64, bool)

// EvalParams carries the context needed to evaluate a candidate schedule.
type EvalParams struct {
	// NowSeconds is the current simulation time.
	NowSeconds float64
	// SpeedMps is the constant taxi speed.
	SpeedMps float64
	// Start is the vertex the evaluation departs from (the taxi's next
	// vertex when mid-edge).
	Start roadnet.VertexID
	// LeadMeters is the distance still to travel before reaching Start.
	LeadMeters float64
	// Capacity is the taxi's seat capacity.
	Capacity int
	// OnboardSeats is the number of seats already occupied when the
	// schedule begins.
	OnboardSeats int
}

// EvalResult reports the outcome of evaluating a candidate schedule.
type EvalResult struct {
	// Feasible is true when every leg is routable, every pickup meets its
	// pickup deadline, every dropoff meets its delivery deadline, and
	// occupancy never exceeds capacity.
	Feasible bool
	// TotalMeters is the travel distance from the evaluation start
	// through every event (including LeadMeters). Valid only when all
	// legs were routable; when infeasible due to deadline/capacity it
	// still holds the accumulated distance up to the failure.
	TotalMeters float64
	// ArrivalSeconds holds the absolute arrival time at each event.
	ArrivalSeconds []float64
}

// EvaluateSchedule walks a candidate event sequence, accumulating travel
// cost leg by leg and checking the paper's two constraint families
// (§III-C): delivery deadlines (pickups additionally respect the derived
// pickup deadline) and seat capacity. It is the shared core of Alg. 1's
// schedule enumeration for every scheme in the repository.
//
// Deadline-boundary convention (shared with match.Engine's search-radius
// gate): deadlines are inclusive — arrival exactly at the pickup or
// delivery deadline is feasible; only t strictly past the deadline fails.
func EvaluateSchedule(events []Event, cost LegCoster, p EvalParams) EvalResult {
	res := EvalResult{ArrivalSeconds: make([]float64, len(events))}
	if p.SpeedMps <= 0 {
		return res
	}
	at := p.Start
	meters := p.LeadMeters
	seats := p.OnboardSeats
	for i, e := range events {
		leg, ok := cost(at, e.Vertex())
		if !ok || math.IsInf(leg, 1) {
			res.TotalMeters = meters
			return res
		}
		meters += leg
		at = e.Vertex()
		t := p.NowSeconds + meters/p.SpeedMps
		res.ArrivalSeconds[i] = t
		switch e.Kind {
		case Pickup:
			if t > e.Req.PickupDeadline(p.SpeedMps).Seconds() {
				res.TotalMeters = meters
				return res
			}
			seats += e.Req.Passengers
			if seats > p.Capacity {
				res.TotalMeters = meters
				return res
			}
		case Dropoff:
			if t > e.Req.Deadline.Seconds() {
				res.TotalMeters = meters
				return res
			}
			seats -= e.Req.Passengers
		}
	}
	res.Feasible = true
	res.TotalMeters = meters
	return res
}

// EvaluateScheduleWithCosts is EvaluateSchedule for callers that already
// computed each leg's travel cost (probabilistic routing materialises legs
// up front). legMeters[i] is the cost of the leg ending at events[i].
func EvaluateScheduleWithCosts(events []Event, legMeters []float64, p EvalParams) EvalResult {
	// Validate the pairing before any evaluation state is set up: a
	// mismatched legMeters cannot be walked meaningfully, so the result is
	// infeasible with zero-filled arrival times.
	if len(legMeters) != len(events) {
		return EvalResult{ArrivalSeconds: make([]float64, len(events))}
	}
	i := 0
	coster := func(u, v roadnet.VertexID) (float64, bool) {
		if i >= len(legMeters) {
			return 0, false
		}
		c := legMeters[i]
		i++
		return c, true
	}
	return EvaluateSchedule(events, coster, p)
}

// BestInsertion enumerates all insertions of req into schedule (Alg. 1's
// inner loop for one taxi), evaluates each with EvaluateSchedule, and
// returns the feasible candidate with the minimum total travel cost. ok is
// false when no feasible insertion exists. stopAtFirst makes it return the
// first feasible candidate instead of the best (T-Share's behaviour).
func BestInsertion(schedule []Event, req *Request, cost LegCoster, p EvalParams, stopAtFirst bool) (best []Event, bestEval EvalResult, ok bool) {
	for _, cand := range InsertionCandidates(schedule, req) {
		ev := EvaluateSchedule(cand, cost, p)
		if !ev.Feasible {
			continue
		}
		if stopAtFirst {
			return cand, ev, true
		}
		if !ok || ev.TotalMeters < bestEval.TotalMeters {
			best, bestEval, ok = cand, ev, true
		}
	}
	return best, bestEval, ok
}
