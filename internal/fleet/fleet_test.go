package fleet

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// testGraph builds a 1-D corridor 0-1-2-3-4-5 with bidirectional edges of
// 1000 m each.
func testGraph() *roadnet.Graph {
	g := roadnet.NewGraph(6)
	for i := 0; i < 6; i++ {
		g.AddVertex(geo.Point{Lat: 30, Lng: 104 + float64(i)*0.01})
	}
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(roadnet.VertexID(i), roadnet.VertexID(i+1), 1000)
		g.AddEdge(roadnet.VertexID(i+1), roadnet.VertexID(i), 1000)
	}
	return g
}

func testRequest(g *roadnet.Graph, id int64, o, d roadnet.VertexID, release, deadline time.Duration) *Request {
	cost, _, _ := g.ShortestPath(o, d)
	return &Request{
		ID:           RequestID(id),
		ReleaseAt:    release,
		Origin:       o,
		Dest:         d,
		Deadline:     deadline,
		DirectMeters: cost,
		Passengers:   1,
		OriginPt:     g.Point(o),
		DestPt:       g.Point(d),
	}
}

func pathBetween(t *testing.T, g *roadnet.Graph, u, v roadnet.VertexID) []roadnet.VertexID {
	t.Helper()
	_, p, ok := g.ShortestPath(u, v)
	if !ok {
		t.Fatalf("no path %d->%d", u, v)
	}
	return p
}

func TestRequestValidate(t *testing.T) {
	g := testGraph()
	good := testRequest(g, 1, 0, 3, 0, time.Hour)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Request{
		{ID: 1, Origin: 0, Dest: 1, Deadline: time.Hour, Passengers: 0},
		{ID: 2, Origin: 0, Dest: 1, ReleaseAt: time.Hour, Deadline: time.Minute, Passengers: 1},
		{ID: 3, Origin: 0, Dest: 1, Deadline: time.Hour, Passengers: 1, DirectMeters: -1},
		{ID: 4, Origin: 2, Dest: 2, Deadline: time.Hour, Passengers: 1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRequestDeadlines(t *testing.T) {
	g := testGraph()
	// 0 -> 3 is 3000 m; at 10 m/s direct time is 300 s.
	r := testRequest(g, 1, 0, 3, 100*time.Second, 1000*time.Second)
	if got := r.DirectSeconds(10); got != 300 {
		t.Fatalf("DirectSeconds = %v", got)
	}
	if got := r.PickupDeadline(10); got != 700*time.Second {
		t.Fatalf("PickupDeadline = %v", got)
	}
	if got := r.Slack(10); got != 600*time.Second {
		t.Fatalf("Slack = %v", got)
	}
}

func TestEventVertexAndString(t *testing.T) {
	g := testGraph()
	r := testRequest(g, 1, 0, 3, 0, time.Hour)
	pk := Event{Req: r, Kind: Pickup}
	dp := Event{Req: r, Kind: Dropoff}
	if pk.Vertex() != 0 || dp.Vertex() != 3 {
		t.Fatal("event vertices wrong")
	}
	if pk.String() == "" || Pickup.String() != "pickup" || Dropoff.String() != "dropoff" {
		t.Fatal("strings wrong")
	}
}

func TestValidSequence(t *testing.T) {
	g := testGraph()
	r1 := testRequest(g, 1, 0, 3, 0, time.Hour)
	r2 := testRequest(g, 2, 1, 4, 0, time.Hour)
	ok := []Event{{r1, Pickup}, {r2, Pickup}, {r1, Dropoff}, {r2, Dropoff}}
	if !ValidSequence(ok) {
		t.Fatal("valid sequence rejected")
	}
	dupPickup := []Event{{r1, Pickup}, {r1, Pickup}}
	if ValidSequence(dupPickup) {
		t.Fatal("duplicate pickup accepted")
	}
	pickupAfterDrop := []Event{{r1, Pickup}, {r1, Dropoff}, {r1, Pickup}}
	if ValidSequence(pickupAfterDrop) {
		t.Fatal("pickup after dropoff accepted")
	}
	dupDrop := []Event{{r1, Pickup}, {r1, Dropoff}, {r1, Dropoff}}
	if ValidSequence(dupDrop) {
		t.Fatal("duplicate dropoff accepted")
	}
}

func TestInsertionCandidatesCountAndValidity(t *testing.T) {
	g := testGraph()
	r1 := testRequest(g, 1, 0, 3, 0, time.Hour)
	r2 := testRequest(g, 2, 1, 4, 0, time.Hour)
	r3 := testRequest(g, 3, 2, 5, 0, time.Hour)
	sched := []Event{{r1, Pickup}, {r1, Dropoff}, {r2, Pickup}, {r2, Dropoff}}
	cands := InsertionCandidates(sched, r3)
	m := len(sched)
	want := (m + 1) * (m + 2) / 2
	if len(cands) != want {
		t.Fatalf("candidates = %d, want %d", len(cands), want)
	}
	for _, c := range cands {
		if len(c) != m+2 {
			t.Fatalf("candidate length %d", len(c))
		}
		if !ValidSequence(c) {
			t.Fatalf("invalid candidate %v", c)
		}
		// Existing order preserved.
		var kept []Event
		for _, e := range c {
			if e.Req.ID != r3.ID {
				kept = append(kept, e)
			}
		}
		for i := range kept {
			if kept[i] != sched[i] {
				t.Fatal("existing schedule order changed")
			}
		}
	}
}

func TestInsertionCandidatesEmptySchedule(t *testing.T) {
	g := testGraph()
	r := testRequest(g, 1, 0, 3, 0, time.Hour)
	cands := InsertionCandidates(nil, r)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	if cands[0][0].Kind != Pickup || cands[0][1].Kind != Dropoff {
		t.Fatal("pair order wrong")
	}
}

func legCoster(g *roadnet.Graph) LegCoster {
	return func(u, v roadnet.VertexID) (float64, bool) {
		c, _, ok := g.ShortestPath(u, v)
		return c, ok
	}
}

func TestEvaluateScheduleHappyPath(t *testing.T) {
	g := testGraph()
	r := testRequest(g, 1, 1, 4, 0, 1000*time.Second)
	events := []Event{{r, Pickup}, {r, Dropoff}}
	res := EvaluateSchedule(events, legCoster(g), EvalParams{
		SpeedMps: 10, Start: 0, Capacity: 3,
	})
	if !res.Feasible {
		t.Fatal("feasible schedule rejected")
	}
	if res.TotalMeters != 4000 { // 0->1 (1000) + 1->4 (3000)
		t.Fatalf("TotalMeters = %v", res.TotalMeters)
	}
	if res.ArrivalSeconds[0] != 100 || res.ArrivalSeconds[1] != 400 {
		t.Fatalf("arrivals = %v", res.ArrivalSeconds)
	}
}

func TestEvaluateScheduleDeadlineViolations(t *testing.T) {
	g := testGraph()
	// Direct time 1->4 at 10 m/s = 300 s; deadline 350 s means pickup
	// deadline is 50 s. Starting from vertex 0 takes 100 s to pick up.
	r := testRequest(g, 1, 1, 4, 0, 350*time.Second)
	events := []Event{{r, Pickup}, {r, Dropoff}}
	res := EvaluateSchedule(events, legCoster(g), EvalParams{SpeedMps: 10, Start: 0, Capacity: 3})
	if res.Feasible {
		t.Fatal("pickup past deadline accepted")
	}
	// Same start, roomy pickup deadline but impossible delivery deadline.
	r2 := testRequest(g, 2, 0, 5, 0, 400*time.Second) // direct 500 s > 400 s
	res2 := EvaluateSchedule([]Event{{r2, Pickup}, {r2, Dropoff}}, legCoster(g),
		EvalParams{SpeedMps: 10, Start: 0, Capacity: 3})
	if res2.Feasible {
		t.Fatal("impossible delivery accepted")
	}
}

func TestEvaluateScheduleExactlyAtDeadline(t *testing.T) {
	g := testGraph()
	// Direct time 1->4 at 10 m/s = 300 s; deadline 400 s puts the pickup
	// deadline at exactly 100 s — precisely the arrival time from vertex 0.
	// The dropoff then lands at exactly 400 s. Deadlines are inclusive:
	// arrival exactly at either boundary is feasible.
	r := testRequest(g, 1, 1, 4, 0, 400*time.Second)
	events := []Event{{r, Pickup}, {r, Dropoff}}
	res := EvaluateSchedule(events, legCoster(g), EvalParams{SpeedMps: 10, Start: 0, Capacity: 3})
	if !res.Feasible {
		t.Fatal("arrival exactly at the deadline rejected")
	}
	if res.ArrivalSeconds[0] != 100 || res.ArrivalSeconds[1] != 400 {
		t.Fatalf("arrivals = %v", res.ArrivalSeconds)
	}
	// One second less slack pushes the pickup strictly past its deadline.
	late := testRequest(g, 2, 1, 4, 0, 399*time.Second)
	res2 := EvaluateSchedule([]Event{{late, Pickup}, {late, Dropoff}}, legCoster(g),
		EvalParams{SpeedMps: 10, Start: 0, Capacity: 3})
	if res2.Feasible {
		t.Fatal("arrival strictly past the deadline accepted")
	}
}

func TestEvaluateScheduleWithCostsMismatch(t *testing.T) {
	g := testGraph()
	r := testRequest(g, 1, 1, 4, 0, time.Hour)
	events := []Event{{r, Pickup}, {r, Dropoff}}
	p := EvalParams{SpeedMps: 10, Start: 0, Capacity: 3}
	for _, legs := range [][]float64{nil, {1000}, {1000, 3000, 500}} {
		res := EvaluateScheduleWithCosts(events, legs, p)
		if res.Feasible {
			t.Fatalf("legs %v: mismatched legMeters accepted", legs)
		}
		if len(res.ArrivalSeconds) != len(events) {
			t.Fatalf("legs %v: ArrivalSeconds len = %d, want %d", legs, len(res.ArrivalSeconds), len(events))
		}
		for i, a := range res.ArrivalSeconds {
			if a != 0 {
				t.Fatalf("legs %v: ArrivalSeconds[%d] = %v, want zero-filled", legs, i, a)
			}
		}
		if res.TotalMeters != 0 {
			t.Fatalf("legs %v: TotalMeters = %v, want 0", legs, res.TotalMeters)
		}
	}
	// Matched lengths still evaluate normally.
	res := EvaluateScheduleWithCosts(events, []float64{1000, 3000}, p)
	if !res.Feasible || res.TotalMeters != 4000 {
		t.Fatalf("matched legs: Feasible=%v TotalMeters=%v", res.Feasible, res.TotalMeters)
	}
}

func TestEvaluateScheduleCapacity(t *testing.T) {
	g := testGraph()
	r1 := testRequest(g, 1, 0, 5, 0, time.Hour)
	r2 := testRequest(g, 2, 1, 4, 0, time.Hour)
	events := []Event{{r1, Pickup}, {r2, Pickup}, {r2, Dropoff}, {r1, Dropoff}}
	ok := EvaluateSchedule(events, legCoster(g), EvalParams{SpeedMps: 10, Start: 0, Capacity: 2})
	if !ok.Feasible {
		t.Fatal("capacity-2 schedule rejected")
	}
	tight := EvaluateSchedule(events, legCoster(g), EvalParams{SpeedMps: 10, Start: 0, Capacity: 1})
	if tight.Feasible {
		t.Fatal("over-capacity schedule accepted")
	}
	preload := EvaluateSchedule(events, legCoster(g), EvalParams{SpeedMps: 10, Start: 0, Capacity: 2, OnboardSeats: 1})
	if preload.Feasible {
		t.Fatal("onboard seats ignored")
	}
}

func TestEvaluateScheduleLeadMetersAndNow(t *testing.T) {
	g := testGraph()
	r := testRequest(g, 1, 1, 4, 0, 1000*time.Second)
	events := []Event{{r, Pickup}, {r, Dropoff}}
	res := EvaluateSchedule(events, legCoster(g), EvalParams{
		NowSeconds: 50, SpeedMps: 10, Start: 0, LeadMeters: 500, Capacity: 3,
	})
	if !res.Feasible {
		t.Fatal("rejected")
	}
	// Arrival at pickup: 50 + (500+1000)/10 = 200.
	if res.ArrivalSeconds[0] != 200 {
		t.Fatalf("pickup arrival = %v", res.ArrivalSeconds[0])
	}
	if res.TotalMeters != 4500 {
		t.Fatalf("TotalMeters = %v", res.TotalMeters)
	}
}

func TestEvaluateScheduleUnroutableLeg(t *testing.T) {
	g := roadnet.NewGraph(2)
	g.AddVertex(geo.Point{Lat: 30, Lng: 104})
	g.AddVertex(geo.Point{Lat: 30, Lng: 104.01})
	g.AddEdge(0, 1, 1000) // one way only
	r := &Request{ID: 1, Origin: 1, Dest: 0, Deadline: time.Hour, Passengers: 1, DirectMeters: 1000}
	res := EvaluateSchedule([]Event{{r, Pickup}, {r, Dropoff}}, legCoster(g),
		EvalParams{SpeedMps: 10, Start: 0, Capacity: 2})
	if res.Feasible {
		t.Fatal("unroutable leg accepted")
	}
}

func TestEvaluateScheduleZeroSpeed(t *testing.T) {
	g := testGraph()
	r := testRequest(g, 1, 1, 4, 0, time.Hour)
	res := EvaluateSchedule([]Event{{r, Pickup}, {r, Dropoff}}, legCoster(g),
		EvalParams{SpeedMps: 0, Start: 0, Capacity: 2})
	if res.Feasible {
		t.Fatal("zero speed accepted")
	}
}

func TestBestInsertionPicksMinimumCost(t *testing.T) {
	g := testGraph()
	// Taxi at 0 already serving r1: 0 -> 5. Insert r2 (1 -> 2): the best
	// insertion is pickup and dropoff en route (no detour).
	r1 := testRequest(g, 1, 0, 5, 0, time.Hour)
	r2 := testRequest(g, 2, 1, 2, 0, time.Hour)
	sched := []Event{{r1, Pickup}, {r1, Dropoff}}
	params := EvalParams{SpeedMps: 10, Start: 0, Capacity: 3}
	best, ev, ok := BestInsertion(sched, r2, legCoster(g), params, false)
	if !ok {
		t.Fatal("no feasible insertion")
	}
	if ev.TotalMeters != 5000 {
		t.Fatalf("best insertion cost %v, want 5000 (zero detour)", ev.TotalMeters)
	}
	if !ValidSequence(best) {
		t.Fatal("invalid best sequence")
	}
}

func TestBestInsertionStopAtFirst(t *testing.T) {
	g := testGraph()
	r1 := testRequest(g, 1, 0, 5, 0, time.Hour)
	r2 := testRequest(g, 2, 1, 2, 0, time.Hour)
	sched := []Event{{r1, Pickup}, {r1, Dropoff}}
	params := EvalParams{SpeedMps: 10, Start: 0, Capacity: 3}
	_, first, ok := BestInsertion(sched, r2, legCoster(g), params, true)
	if !ok {
		t.Fatal("no feasible insertion")
	}
	_, best, _ := BestInsertion(sched, r2, legCoster(g), params, false)
	if first.TotalMeters < best.TotalMeters {
		t.Fatal("first-valid beat exhaustive best")
	}
}

func TestBestInsertionInfeasible(t *testing.T) {
	g := testGraph()
	r1 := testRequest(g, 1, 0, 5, 0, 510*time.Second) // direct 500 s, no slack
	r2 := testRequest(g, 2, 5, 0, 0, 510*time.Second) // opposite, equally tight
	sched := []Event{{r1, Pickup}, {r1, Dropoff}}
	if _, _, ok := BestInsertion(sched, r2, legCoster(g), EvalParams{SpeedMps: 10, Start: 0, Capacity: 3}, false); ok {
		t.Fatal("infeasible insertion accepted")
	}
}

func TestTaxiLifecycle(t *testing.T) {
	g := testGraph()
	taxi := NewTaxi(g, 1, 3, 0)
	if !taxi.Empty() || taxi.At() != 0 || taxi.OccupiedSeats() != 0 || taxi.IdleSeats() != 3 {
		t.Fatal("fresh taxi state wrong")
	}
	if _, ok := taxi.MobilityVector(); ok {
		t.Fatal("empty taxi has a mobility vector")
	}

	r := testRequest(g, 1, 1, 4, 0, time.Hour)
	events := []Event{{r, Pickup}, {r, Dropoff}}
	legs := [][]roadnet.VertexID{pathBetween(t, g, 0, 1), pathBetween(t, g, 1, 4)}
	if err := taxi.SetPlan(events, legs); err != nil {
		t.Fatal(err)
	}
	if taxi.Empty() {
		t.Fatal("taxi with waiting request reports empty")
	}
	if got := taxi.RemainingMeters(); got != 4000 {
		t.Fatalf("RemainingMeters = %v", got)
	}
	if _, ok := taxi.MobilityVector(); !ok {
		t.Fatal("assigned taxi has no mobility vector")
	}

	// Advance 1000 m: reach vertex 1, pickup fires.
	visits := taxi.Advance(1000)
	if len(visits) != 1 || visits[0].Event.Kind != Pickup {
		t.Fatalf("visits = %v", visits)
	}
	if visits[0].MetersIntoTick != 1000 {
		t.Fatalf("MetersIntoTick = %v", visits[0].MetersIntoTick)
	}
	if taxi.OccupiedSeats() != 1 || len(taxi.Onboard()) != 1 || len(taxi.Waiting()) != 0 {
		t.Fatal("pickup bookkeeping wrong")
	}

	// Advance the remaining 3000 m: dropoff fires and taxi parks at 4.
	visits = taxi.Advance(3000)
	if len(visits) != 1 || visits[0].Event.Kind != Dropoff {
		t.Fatalf("visits = %v", visits)
	}
	if !taxi.Empty() || taxi.At() != 4 || taxi.OccupiedSeats() != 0 {
		t.Fatalf("post-delivery state: empty=%v at=%d", taxi.Empty(), taxi.At())
	}
	if taxi.RemainingMeters() != 0 || taxi.Route() != nil {
		t.Fatal("parked taxi still has a route")
	}
}

func TestTaxiAdvancePartialEdge(t *testing.T) {
	g := testGraph()
	taxi := NewTaxi(g, 1, 3, 0)
	r := testRequest(g, 1, 2, 4, 0, time.Hour)
	events := []Event{{r, Pickup}, {r, Dropoff}}
	legs := [][]roadnet.VertexID{pathBetween(t, g, 0, 2), pathBetween(t, g, 2, 4)}
	if err := taxi.SetPlan(events, legs); err != nil {
		t.Fatal(err)
	}
	taxi.Advance(500) // mid first edge
	if taxi.At() != 0 {
		t.Fatalf("At = %d mid-edge", taxi.At())
	}
	if taxi.NextVertex() != 1 {
		t.Fatalf("NextVertex = %d", taxi.NextVertex())
	}
	if lm := taxi.LeadMeters(); lm != 500 {
		t.Fatalf("LeadMeters = %v", lm)
	}
	// Interpolated point lies between vertices 0 and 1.
	p := taxi.Point()
	if p.Lng <= g.Point(0).Lng || p.Lng >= g.Point(1).Lng {
		t.Fatalf("interpolated point %v outside edge", p)
	}
	if got := taxi.RemainingMeters(); got != 3500 {
		t.Fatalf("RemainingMeters = %v", got)
	}
}

func TestTaxiReplanMidEdgePreservesCommittedEdge(t *testing.T) {
	g := testGraph()
	taxi := NewTaxi(g, 1, 3, 0)
	r1 := testRequest(g, 1, 2, 4, 0, time.Hour)
	legs := [][]roadnet.VertexID{pathBetween(t, g, 0, 2), pathBetween(t, g, 2, 4)}
	if err := taxi.SetPlan([]Event{{r1, Pickup}, {r1, Dropoff}}, legs); err != nil {
		t.Fatal(err)
	}
	taxi.Advance(500) // committed to edge 0->1
	// Replan from NextVertex (=1).
	r2 := testRequest(g, 2, 1, 3, 0, time.Hour)
	events := []Event{{r2, Pickup}, {r1, Pickup}, {r1, Dropoff}, {r2, Dropoff}}
	newLegs := [][]roadnet.VertexID{
		pathBetween(t, g, 1, 1),
		pathBetween(t, g, 1, 2),
		pathBetween(t, g, 2, 4),
		pathBetween(t, g, 4, 3),
	}
	if err := taxi.SetPlan(events, newLegs); err != nil {
		t.Fatal(err)
	}
	// Remaining: 500 (rest of committed edge) + 1000 + 2000 + 1000.
	if got := taxi.RemainingMeters(); got != 4500 {
		t.Fatalf("RemainingMeters = %v", got)
	}
	visits := taxi.Advance(500)
	if len(visits) != 1 || visits[0].Event.Req.ID != 2 || visits[0].Event.Kind != Pickup {
		t.Fatalf("pickup at committed-edge end missing: %v", visits)
	}
	// Drive to completion.
	visits = taxi.Advance(4000)
	if len(visits) != 3 {
		t.Fatalf("remaining visits = %d, want 3", len(visits))
	}
	if !taxi.Empty() || taxi.At() != 3 {
		t.Fatalf("final state: at %d", taxi.At())
	}
}

func TestTaxiSetPlanErrors(t *testing.T) {
	g := testGraph()
	taxi := NewTaxi(g, 1, 3, 0)
	r := testRequest(g, 1, 1, 4, 0, time.Hour)
	events := []Event{{r, Pickup}, {r, Dropoff}}
	cases := map[string][][]roadnet.VertexID{
		"wrong leg count": {pathBetween(t, g, 0, 1)},
		"empty leg":       {pathBetween(t, g, 0, 1), nil},
		"leg discontinuity": {
			pathBetween(t, g, 0, 1),
			pathBetween(t, g, 2, 4),
		},
		"leg wrong endpoint": {
			pathBetween(t, g, 0, 1),
			pathBetween(t, g, 1, 3),
		},
		"missing edge": {
			{0, 2}, // no direct edge 0->2
			pathBetween(t, g, 2, 4),
		},
	}
	for name, legs := range cases {
		if err := taxi.SetPlan(events, legs); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Bad request wiring: dropoff for unknown request.
	r2 := testRequest(g, 2, 2, 5, 0, time.Hour)
	if err := taxi.SetPlan([]Event{{r2, Dropoff}}, [][]roadnet.VertexID{pathBetween(t, g, 0, 5)}); err == nil {
		t.Error("dropoff-only for unknown request accepted")
	}
	// Plan dropping a known request.
	if err := taxi.SetPlan(events, [][]roadnet.VertexID{pathBetween(t, g, 0, 1), pathBetween(t, g, 1, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := taxi.SetPlan(nil, nil); err == nil {
		t.Error("plan dropping waiting request accepted")
	}
}

func TestTaxiCruisePlan(t *testing.T) {
	g := testGraph()
	taxi := NewTaxi(g, 1, 3, 0)
	// Cruise 0 -> 3 with no events (probabilistic seeking).
	if err := taxi.SetPlan(nil, [][]roadnet.VertexID{pathBetween(t, g, 0, 3)}); err != nil {
		t.Fatal(err)
	}
	if !taxi.Empty() {
		t.Fatal("cruising taxi not empty")
	}
	if v := taxi.Advance(3000); len(v) != 0 {
		t.Fatalf("cruise produced events: %v", v)
	}
	if taxi.At() != 3 {
		t.Fatalf("cruise ended at %d", taxi.At())
	}
}

func TestTaxiParkPlan(t *testing.T) {
	g := testGraph()
	taxi := NewTaxi(g, 1, 3, 2)
	if err := taxi.SetPlan(nil, nil); err != nil {
		t.Fatal(err)
	}
	if taxi.At() != 2 || taxi.Advance(100) != nil {
		t.Fatal("parked taxi misbehaved")
	}
}

func TestTaxiEventAtStartVertex(t *testing.T) {
	g := testGraph()
	taxi := NewTaxi(g, 1, 3, 1)
	r := testRequest(g, 1, 1, 4, 0, time.Hour)
	events := []Event{{r, Pickup}, {r, Dropoff}}
	legs := [][]roadnet.VertexID{{1}, pathBetween(t, g, 1, 4)}
	if err := taxi.SetPlan(events, legs); err != nil {
		t.Fatal(err)
	}
	visits := taxi.Advance(0)
	if len(visits) != 1 || visits[0].Event.Kind != Pickup {
		t.Fatalf("start-vertex pickup did not fire: %v", visits)
	}
	if taxi.OccupiedSeats() != 1 {
		t.Fatal("seat accounting after start pickup")
	}
}

func TestTaxiMultipleEventsSameVertex(t *testing.T) {
	g := testGraph()
	taxi := NewTaxi(g, 1, 4, 0)
	// Two passengers picked up at the same vertex 2.
	r1 := testRequest(g, 1, 2, 4, 0, time.Hour)
	r2 := testRequest(g, 2, 2, 5, 0, time.Hour)
	events := []Event{{r1, Pickup}, {r2, Pickup}, {r1, Dropoff}, {r2, Dropoff}}
	legs := [][]roadnet.VertexID{
		pathBetween(t, g, 0, 2), {2}, pathBetween(t, g, 2, 4), pathBetween(t, g, 4, 5),
	}
	if err := taxi.SetPlan(events, legs); err != nil {
		t.Fatal(err)
	}
	visits := taxi.Advance(2000)
	if len(visits) != 2 {
		t.Fatalf("visits at shared vertex = %d, want 2", len(visits))
	}
	if taxi.OccupiedSeats() != 2 {
		t.Fatalf("seats = %d", taxi.OccupiedSeats())
	}
	visits = taxi.Advance(3000)
	if len(visits) != 2 || !taxi.Empty() {
		t.Fatalf("deliveries = %d, empty = %v", len(visits), taxi.Empty())
	}
}

func TestTaxiAdvanceManySmallTicks(t *testing.T) {
	// Motion must be exact regardless of tick granularity.
	g := testGraph()
	taxi := NewTaxi(g, 1, 3, 0)
	r := testRequest(g, 1, 1, 4, 0, time.Hour)
	legs := [][]roadnet.VertexID{pathBetween(t, g, 0, 1), pathBetween(t, g, 1, 4)}
	if err := taxi.SetPlan([]Event{{r, Pickup}, {r, Dropoff}}, legs); err != nil {
		t.Fatal(err)
	}
	var all []EventVisit
	total := 0.0
	for i := 0; i < 1000 && !taxi.Empty(); i++ {
		all = append(all, taxi.Advance(7.3)...)
		total += 7.3
	}
	if len(all) != 2 {
		t.Fatalf("events fired = %d", len(all))
	}
	if math.Abs(total-4000) > 10 {
		t.Fatalf("travelled %v m for a 4000 m plan", total)
	}
}

func TestEvalParamsAt(t *testing.T) {
	g := testGraph()
	taxi := NewTaxi(g, 1, 3, 0)
	r := testRequest(g, 1, 2, 4, 0, time.Hour)
	legs := [][]roadnet.VertexID{pathBetween(t, g, 0, 2), pathBetween(t, g, 2, 4)}
	if err := taxi.SetPlan([]Event{{r, Pickup}, {r, Dropoff}}, legs); err != nil {
		t.Fatal(err)
	}
	taxi.Advance(300)
	p := taxi.EvalParamsAt(42, 10)
	if p.NowSeconds != 42 || p.SpeedMps != 10 {
		t.Fatal("params passthrough wrong")
	}
	if p.Start != 1 || p.LeadMeters != 700 {
		t.Fatalf("Start=%d Lead=%v", p.Start, p.LeadMeters)
	}
	if p.Capacity != 3 || p.OnboardSeats != 0 {
		t.Fatal("capacity params wrong")
	}
}

func TestNewTaxiPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTaxi(testGraph(), 1, 0, 0)
}

func BenchmarkInsertionEnumeration(b *testing.B) {
	g := testGraph()
	var sched []Event
	for i := 0; i < 3; i++ {
		r := testRequest(g, int64(i), roadnet.VertexID(i), roadnet.VertexID(i+2), 0, time.Hour)
		sched = append(sched, Event{r, Pickup}, Event{r, Dropoff})
	}
	req := testRequest(g, 99, 1, 5, 0, time.Hour)
	lc := legCoster(g)
	params := EvalParams{SpeedMps: 10, Start: 0, Capacity: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = BestInsertion(sched, req, lc, params, false)
	}
}

func BenchmarkTaxiAdvance(b *testing.B) {
	g := testGraph()
	r := testRequest(g, 1, 1, 4, 0, time.Hour)
	legs := [][]roadnet.VertexID{
		{0, 1}, {1, 2, 3, 4},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		taxi2 := NewTaxi(g, 1, 3, 0)
		if err := taxi2.SetPlan([]Event{{r, Pickup}, {r, Dropoff}}, legs); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for !taxi2.Empty() {
			taxi2.Advance(50)
		}
	}
}
