package fleet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/roadnet"
)

// TestQuickInsertionCandidatesAlwaysValid: for random schedules, every
// insertion candidate preserves precedence and contains exactly the old
// events plus the new pair.
func TestQuickInsertionCandidatesAlwaysValid(t *testing.T) {
	g := testGraph()
	f := func(seed int64, nReq uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nReq%3) + 1
		var sched []Event
		for i := 0; i < n; i++ {
			o := roadnet.VertexID(rng.Intn(5))
			d := roadnet.VertexID((int(o) + 1 + rng.Intn(4)) % 6)
			if o == d {
				d = (d + 1) % 6
			}
			r := testRequest(g, int64(i), o, d, 0, time.Hour)
			sched = append(sched, Event{r, Pickup}, Event{r, Dropoff})
		}
		req := testRequest(g, 99, 0, 5, 0, time.Hour)
		for _, cand := range InsertionCandidates(sched, req) {
			if len(cand) != len(sched)+2 {
				return false
			}
			if !ValidSequence(cand) {
				return false
			}
			// Multiset equality with the original plus the pair.
			count := map[Event]int{}
			for _, e := range cand {
				count[e]++
			}
			for _, e := range sched {
				count[e]--
			}
			count[Event{req, Pickup}]--
			count[Event{req, Dropoff}]--
			for _, c := range count {
				if c != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvaluateMonotoneInDeadlines: loosening every deadline never
// turns a feasible schedule infeasible.
func TestQuickEvaluateMonotoneInDeadlines(t *testing.T) {
	g := testGraph()
	lc := legCoster(g)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1 := testRequest(g, 1, roadnet.VertexID(rng.Intn(3)), roadnet.VertexID(3+rng.Intn(3)), 0,
			time.Duration(300+rng.Intn(600))*time.Second)
		r2 := testRequest(g, 2, roadnet.VertexID(rng.Intn(3)), roadnet.VertexID(3+rng.Intn(3)), 0,
			time.Duration(300+rng.Intn(600))*time.Second)
		if r1.Origin == r1.Dest || r2.Origin == r2.Dest {
			return true
		}
		events := []Event{{r1, Pickup}, {r2, Pickup}, {r1, Dropoff}, {r2, Dropoff}}
		p := EvalParams{SpeedMps: 10, Start: 0, Capacity: 4}
		before := EvaluateSchedule(events, lc, p)
		// Loosen deadlines by an hour.
		l1, l2 := *r1, *r2
		l1.Deadline += time.Hour
		l2.Deadline += time.Hour
		loose := []Event{{&l1, Pickup}, {&l2, Pickup}, {&l1, Dropoff}, {&l2, Dropoff}}
		after := EvaluateSchedule(loose, lc, p)
		if before.Feasible && !after.Feasible {
			return false
		}
		if before.Feasible && after.Feasible {
			// Travel cost is deadline-independent.
			return before.TotalMeters == after.TotalMeters
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAdvanceConservesDistance: however the tick sizes are chosen,
// the odometer after completing a fixed plan equals the plan length.
func TestQuickAdvanceConservesDistance(t *testing.T) {
	g := testGraph()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		taxi := NewTaxi(g, 1, 3, 0)
		r := testRequest(g, 1, 1, 4, 0, time.Hour)
		legs := [][]roadnet.VertexID{{0, 1}, {1, 2, 3, 4}}
		if err := taxi.SetPlan([]Event{{r, Pickup}, {r, Dropoff}}, legs); err != nil {
			return false
		}
		plan := taxi.RemainingMeters()
		for i := 0; i < 10000 && !taxi.Empty(); i++ {
			taxi.Advance(1 + rng.Float64()*200)
		}
		if !taxi.Empty() {
			return false
		}
		diff := taxi.Odometer() - plan
		return diff > -1e-6 && diff < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSeatAccountingNeverNegative: random event application keeps
// occupancy within [0, capacity] for feasible plans.
func TestQuickSeatAccountingNeverNegative(t *testing.T) {
	g := testGraph()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		taxi := NewTaxi(g, 1, 4, 0)
		r1 := testRequest(g, 1, 1, 4, 0, time.Hour)
		r2 := testRequest(g, 2, 2, 5, 0, time.Hour)
		events := []Event{{r1, Pickup}, {r2, Pickup}, {r1, Dropoff}, {r2, Dropoff}}
		legs := [][]roadnet.VertexID{
			{0, 1}, {1, 2}, {2, 3, 4}, {4, 5},
		}
		if err := taxi.SetPlan(events, legs); err != nil {
			return false
		}
		for i := 0; i < 5000 && !taxi.Empty(); i++ {
			taxi.Advance(rng.Float64() * 150)
			if taxi.OccupiedSeats() < 0 || taxi.OccupiedSeats() > taxi.Capacity {
				return false
			}
		}
		return taxi.Empty() && taxi.OccupiedSeats() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
