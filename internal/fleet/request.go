// Package fleet models the dynamic entities of the ridesharing system:
// ride requests (Definition 2 of the paper), taxi status with schedule and
// route (Definitions 3–5), exact motion of taxis along planned routes, and
// the schedule-insertion and feasibility machinery shared by mT-Share and
// the baseline schemes.
package fleet

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// RequestID identifies a ride request.
type RequestID int64

// Request is a ride request r_i = <t_ri, o_ri, d_ri, e_ri>: released at
// ReleaseAt, from Origin to Dest, to be completed by Deadline. Offline
// requests additionally carry the Offline flag: they are invisible to the
// dispatcher until a taxi encounters them at the roadside.
type Request struct {
	ID        RequestID
	ReleaseAt time.Duration
	Origin    roadnet.VertexID
	Dest      roadnet.VertexID
	// Deadline is the delivery deadline e_ri.
	Deadline time.Duration
	// DirectMeters is the shortest-path travel cost from Origin to Dest,
	// used for pickup deadlines (e_ri − cost(o,d)), detour accounting
	// (Eq. 6), and fares.
	DirectMeters float64
	// Passengers is the party size; at least 1.
	Passengers int
	// Offline marks a street-hailing request (r̄_i in the paper).
	Offline bool
	// OriginPt/DestPt cache the geographic endpoints for mobility vectors.
	OriginPt geo.Point
	DestPt   geo.Point
}

// Validate reports whether the request is well-formed.
func (r *Request) Validate() error {
	switch {
	case r.Passengers < 1:
		return fmt.Errorf("fleet: request %d has %d passengers", r.ID, r.Passengers)
	case r.Deadline <= r.ReleaseAt:
		return fmt.Errorf("fleet: request %d deadline %v not after release %v", r.ID, r.Deadline, r.ReleaseAt)
	case r.DirectMeters < 0:
		return fmt.Errorf("fleet: request %d negative direct cost", r.ID)
	case r.Origin == r.Dest:
		return fmt.Errorf("fleet: request %d origin equals destination", r.ID)
	}
	return nil
}

// MobilityVector returns the request's mobility vector (Definition 9).
func (r *Request) MobilityVector() geo.MobilityVector {
	return geo.NewMobilityVector(r.OriginPt, r.DestPt)
}

// DirectSeconds converts the direct travel cost to seconds at the given
// speed in meters/second.
func (r *Request) DirectSeconds(speedMps float64) float64 {
	return r.DirectMeters / speedMps
}

// PickupDeadline returns the latest pickup time e_ri − cost(o_ri, d_ri)
// (Eq. 2's derivation) at the given speed.
func (r *Request) PickupDeadline(speedMps float64) time.Duration {
	return r.Deadline - time.Duration(r.DirectSeconds(speedMps)*float64(time.Second))
}

// Slack returns the maximum waiting time Δt = e_ri − cost(o,d) − t_ri
// (Eq. 2) at the given speed; negative slack means the request is already
// impossible.
func (r *Request) Slack(speedMps float64) time.Duration {
	return r.PickupDeadline(speedMps) - r.ReleaseAt
}

// EventKind distinguishes pickups from dropoffs in a taxi schedule.
type EventKind int8

// Event kinds.
const (
	Pickup EventKind = iota
	Dropoff
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if k == Pickup {
		return "pickup"
	}
	return "dropoff"
}

// Event is one element of a taxi schedule (Definition 4): picking up or
// dropping off a request's passengers at the request's origin or
// destination vertex.
type Event struct {
	Req  *Request
	Kind EventKind
}

// Vertex returns the road vertex where the event takes place.
func (e Event) Vertex() roadnet.VertexID {
	if e.Kind == Pickup {
		return e.Req.Origin
	}
	return e.Req.Dest
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s(r%d@v%d)", e.Kind, e.Req.ID, e.Vertex())
}

// ValidSequence reports whether events form a valid schedule fragment:
// every request's pickup precedes its dropoff, and no request appears more
// than once per kind.
func ValidSequence(events []Event) bool {
	seen := make(map[RequestID]EventKind, len(events))
	for _, e := range events {
		prev, ok := seen[e.Req.ID]
		switch e.Kind {
		case Pickup:
			if ok {
				return false // duplicate pickup or pickup after dropoff
			}
		case Dropoff:
			if ok && prev != Pickup {
				return false // duplicate dropoff
			}
			// A dropoff without a preceding pickup is valid only for
			// passengers already on board; callers with full context use
			// EvaluateSchedule for that. Here we only reject ordering
			// violations within the fragment.
		}
		seen[e.Req.ID] = e.Kind
	}
	return true
}

// InsertionCandidates enumerates every schedule obtained by inserting the
// request's pickup and dropoff into the existing schedule while keeping
// existing event order unchanged — the insertion strategy mT-Share shares
// with prior work (§IV-C2): pickup at position i, dropoff at position j,
// 0 ≤ i ≤ j ≤ m. The result has (m+1)(m+2)/2 candidate schedules.
func InsertionCandidates(schedule []Event, req *Request) [][]Event {
	m := len(schedule)
	out := make([][]Event, 0, (m+1)*(m+2)/2)
	pk := Event{Req: req, Kind: Pickup}
	dp := Event{Req: req, Kind: Dropoff}
	for i := 0; i <= m; i++ {
		for j := i; j <= m; j++ {
			cand := make([]Event, 0, m+2)
			cand = append(cand, schedule[:i]...)
			cand = append(cand, pk)
			cand = append(cand, schedule[i:j]...)
			cand = append(cand, dp)
			cand = append(cand, schedule[j:]...)
			out = append(out, cand)
		}
	}
	return out
}
