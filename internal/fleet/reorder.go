package fleet

// The paper notes (§IV-C2) that in theory a new request should trigger a
// full rearrangement of the taxi's schedule, but adopts insertion-only
// scheduling because rearrangement is computationally prohibitive at
// scale. This file implements the theoretical variant — exhaustive
// enumeration of every precedence-valid event ordering — as an optional
// extension, bounded by an enumeration budget. The ablation benches use
// it to quantify how much detour insertion-only scheduling leaves on the
// table.

// reorderEnumerator generates all orderings of events subject to
// pickup-before-dropoff precedence, up to a cap.
type reorderEnumerator struct {
	events []Event
	cap    int
	out    [][]Event
	cur    []Event
	used   []bool
}

// ReorderCandidates enumerates valid orderings of the given events (each
// request's pickup before its dropoff; dropoff-only events — passengers
// already on board — are unconstrained) up to maxCandidates orderings.
// The input order is emitted first so the insertion-only solution is
// always among the candidates.
func ReorderCandidates(events []Event, maxCandidates int) [][]Event {
	if maxCandidates < 1 {
		maxCandidates = 1
	}
	e := &reorderEnumerator{
		events: events,
		cap:    maxCandidates,
		cur:    make([]Event, 0, len(events)),
		used:   make([]bool, len(events)),
	}
	// Seed with the given order for determinism and as the fallback.
	seed := make([]Event, len(events))
	copy(seed, events)
	e.out = append(e.out, seed)
	e.dfs()
	return e.out
}

func (e *reorderEnumerator) dfs() {
	if len(e.out) >= e.cap {
		return
	}
	if len(e.cur) == len(e.events) {
		if !sameOrder(e.cur, e.events) {
			cand := make([]Event, len(e.cur))
			copy(cand, e.cur)
			e.out = append(e.out, cand)
		}
		return
	}
	for i, ev := range e.events {
		if e.used[i] {
			continue
		}
		if ev.Kind == Dropoff && e.pickupPending(ev.Req.ID) {
			continue
		}
		e.used[i] = true
		e.cur = append(e.cur, ev)
		e.dfs()
		e.cur = e.cur[:len(e.cur)-1]
		e.used[i] = false
		if len(e.out) >= e.cap {
			return
		}
	}
}

// pickupPending reports whether the request has an unused pickup event —
// i.e. its dropoff may not be scheduled yet.
func (e *reorderEnumerator) pickupPending(id RequestID) bool {
	for i, ev := range e.events {
		if !e.used[i] && ev.Kind == Pickup && ev.Req.ID == id {
			return true
		}
	}
	return false
}

func sameOrder(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BestReorder evaluates every precedence-valid ordering of the existing
// schedule extended with req's pickup/dropoff pair (up to maxCandidates
// orderings) and returns the feasible one with the minimum travel cost.
// It subsumes BestInsertion: the insertion-only solutions are a subset of
// the orderings considered, so the result is never worse — at
// factorially higher cost.
func BestReorder(schedule []Event, req *Request, cost LegCoster, p EvalParams, maxCandidates int) (best []Event, bestEval EvalResult, ok bool) {
	extended := make([]Event, 0, len(schedule)+2)
	extended = append(extended, schedule...)
	extended = append(extended, Event{Req: req, Kind: Pickup}, Event{Req: req, Kind: Dropoff})
	for _, cand := range ReorderCandidates(extended, maxCandidates) {
		ev := EvaluateSchedule(cand, cost, p)
		if !ev.Feasible {
			continue
		}
		if !ok || ev.TotalMeters < bestEval.TotalMeters {
			best, bestEval, ok = cand, ev, true
		}
	}
	return best, bestEval, ok
}
