package fleet

import (
	"testing"
	"time"

	"repro/internal/roadnet"
)

func TestReorderCandidatesRespectPrecedence(t *testing.T) {
	g := testGraph()
	r1 := testRequest(g, 1, 0, 3, 0, time.Hour)
	r2 := testRequest(g, 2, 1, 4, 0, time.Hour)
	events := []Event{{r1, Pickup}, {r1, Dropoff}, {r2, Pickup}, {r2, Dropoff}}
	cands := ReorderCandidates(events, 1000)
	// 4 events, 2 precedence pairs: 4!/(2*2) = 6 valid orderings.
	if len(cands) != 6 {
		t.Fatalf("orderings = %d, want 6", len(cands))
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if !ValidSequence(c) {
			t.Fatalf("invalid ordering %v", c)
		}
		key := ""
		for _, ev := range c {
			key += ev.String()
		}
		if seen[key] {
			t.Fatalf("duplicate ordering %v", c)
		}
		seen[key] = true
	}
	// The seed (input order) must be first.
	for i := range events {
		if cands[0][i] != events[i] {
			t.Fatal("input order not first")
		}
	}
}

func TestReorderCandidatesDropoffOnlyUnconstrained(t *testing.T) {
	g := testGraph()
	r1 := testRequest(g, 1, 0, 3, 0, time.Hour) // onboard: dropoff only
	r2 := testRequest(g, 2, 1, 4, 0, time.Hour)
	events := []Event{{r1, Dropoff}, {r2, Pickup}, {r2, Dropoff}}
	cands := ReorderCandidates(events, 1000)
	// 3 events, one precedence pair: 3!/2 = 3 orderings.
	if len(cands) != 3 {
		t.Fatalf("orderings = %d, want 3", len(cands))
	}
}

func TestReorderCandidatesCap(t *testing.T) {
	g := testGraph()
	var events []Event
	for i := int64(0); i < 4; i++ {
		o := roadnet.VertexID(i)
		d := roadnet.VertexID(i + 2)
		r := testRequest(g, i, o, d, 0, time.Hour)
		events = append(events, Event{r, Pickup}, Event{r, Dropoff})
	}
	// 8 events with 4 precedence pairs: 8!/2^4 = 2520 valid orderings,
	// so a cap of 50 must bind.
	cands := ReorderCandidates(events, 50)
	if len(cands) != 50 {
		t.Fatalf("cap not honoured: %d", len(cands))
	}
}

func TestBestReorderNeverWorseThanInsertion(t *testing.T) {
	g := testGraph()
	r1 := testRequest(g, 1, 0, 5, 0, time.Hour)
	r2 := testRequest(g, 2, 4, 1, 0, time.Hour) // opposite direction
	sched := []Event{{r1, Pickup}, {r1, Dropoff}}
	params := EvalParams{SpeedMps: 10, Start: 0, Capacity: 3}
	lc := legCoster(g)
	_, insEval, insOK := BestInsertion(sched, r2, lc, params, false)
	_, reoEval, reoOK := BestReorder(sched, r2, lc, params, 10000)
	if insOK != reoOK && !reoOK {
		t.Fatal("reorder found nothing where insertion succeeded")
	}
	if insOK && reoOK && reoEval.TotalMeters > insEval.TotalMeters+1e-9 {
		t.Fatalf("reorder %v worse than insertion %v", reoEval.TotalMeters, insEval.TotalMeters)
	}
}

func TestBestReorderBeatsInsertionWhenReorderingHelps(t *testing.T) {
	// Schedule fixed as [PU1@0, DO1@5]; new request 2->3. Insertion-only
	// must keep PU1 before DO1 and cannot move them; any insertion of
	// (PU2, DO2) is already optimal here, so craft a case with two
	// existing requests where swapping existing dropoffs pays off:
	// schedule [PU1@0, DO1@5, PU2... ] constructed so the frozen order is
	// suboptimal for the newcomer.
	g := testGraph()
	rA := testRequest(g, 1, 0, 5, 0, time.Hour)
	rB := testRequest(g, 2, 0, 1, 0, time.Hour)
	// Frozen order delivers A (far end) before B (near) — clearly
	// suboptimal once C (1 -> 2) arrives.
	sched := []Event{{rA, Pickup}, {rB, Pickup}, {rA, Dropoff}, {rB, Dropoff}}
	rC := testRequest(g, 3, 1, 2, 0, time.Hour)
	params := EvalParams{SpeedMps: 10, Start: 0, Capacity: 4}
	lc := legCoster(g)
	_, insEval, insOK := BestInsertion(sched, rC, lc, params, false)
	_, reoEval, reoOK := BestReorder(sched, rC, lc, params, 10000)
	if !insOK || !reoOK {
		t.Fatalf("feasibility: ins=%v reo=%v", insOK, reoOK)
	}
	if reoEval.TotalMeters >= insEval.TotalMeters {
		t.Fatalf("reordering did not help: %v vs %v", reoEval.TotalMeters, insEval.TotalMeters)
	}
}

// BenchmarkReorderVsInsertion quantifies the computational gap the paper
// cites as the reason for insertion-only scheduling.
func BenchmarkReorderVsInsertion(b *testing.B) {
	g := testGraph()
	var sched []Event
	for i := int64(0); i < 2; i++ {
		r := testRequest(g, i, roadnet.VertexID(i), roadnet.VertexID(i+3), 0, time.Hour)
		sched = append(sched, Event{r, Pickup}, Event{r, Dropoff})
	}
	req := testRequest(g, 9, 1, 5, 0, time.Hour)
	lc := legCoster(g)
	params := EvalParams{SpeedMps: 10, Start: 0, Capacity: 6}
	b.Run("insertion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _, _ = BestInsertion(sched, req, lc, params, false)
		}
	})
	b.Run("reorder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _, _ = BestReorder(sched, req, lc, params, 10000)
		}
	})
}
