package fleet

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// Taxi is the instantaneous status of a shared taxi (Definition 3): its
// position on the road network, its schedule S_tj (pending pickup/dropoff
// events), and its route R_tj (the concatenated travel paths between
// consecutive events). Motion is exact: the taxi advances along the
// planned polyline by distance, firing events as their vertices are
// reached.
//
// Taxi is not safe for concurrent use; the simulation engine owns each
// taxi on a single goroutine.
type Taxi struct {
	ID       int64
	Capacity int

	g *roadnet.Graph

	// Planned polyline and progress along it.
	path   []roadnet.VertexID
	costs  []float64 // costs[i] = edge cost path[i] -> path[i+1]
	pos    int       // index of the last vertex reached
	offset float64   // meters progressed along edge path[pos] -> path[pos+1]

	schedule  []Event
	eventPos  []int // index in path of each scheduled event, non-decreasing
	nextEvent int

	idleAt roadnet.VertexID // position when no path is planned

	waiting map[RequestID]*Request // assigned, not yet picked up
	onboard map[RequestID]*Request // picked up, not yet delivered
	seats   int

	odometer float64 // total meters actually driven
}

// NewTaxi creates an idle taxi at the given vertex.
func NewTaxi(g *roadnet.Graph, id int64, capacity int, at roadnet.VertexID) *Taxi {
	if capacity < 1 {
		panic(fmt.Sprintf("fleet: taxi %d capacity %d", id, capacity))
	}
	return &Taxi{
		ID:       id,
		Capacity: capacity,
		g:        g,
		idleAt:   at,
		waiting:  make(map[RequestID]*Request),
		onboard:  make(map[RequestID]*Request),
	}
}

// Graph returns the road network the taxi operates on.
func (t *Taxi) Graph() *roadnet.Graph { return t.g }

// Odometer returns the total meters the taxi has actually driven.
func (t *Taxi) Odometer() float64 { return t.odometer }

// At returns the last vertex the taxi reached (its current position when
// not mid-edge).
func (t *Taxi) At() roadnet.VertexID {
	if len(t.path) == 0 {
		return t.idleAt
	}
	return t.path[t.pos]
}

// Point returns the taxi's current geographic position, interpolated when
// mid-edge.
func (t *Taxi) Point() geo.Point {
	at := t.At()
	if t.offset <= 0 || t.pos+1 >= len(t.path) {
		return t.g.Point(at)
	}
	frac := t.offset / t.costs[t.pos]
	a := t.g.Point(t.path[t.pos])
	b := t.g.Point(t.path[t.pos+1])
	return geo.Point{Lat: a.Lat + (b.Lat-a.Lat)*frac, Lng: a.Lng + (b.Lng-a.Lng)*frac}
}

// NextVertex returns the vertex any new plan must depart from: the next
// vertex along the committed edge when mid-edge, else the current vertex.
func (t *Taxi) NextVertex() roadnet.VertexID {
	if t.offset > 0 && t.pos+1 < len(t.path) {
		return t.path[t.pos+1]
	}
	return t.At()
}

// LeadMeters returns the distance still to travel to reach NextVertex.
func (t *Taxi) LeadMeters() float64 {
	if t.offset > 0 && t.pos+1 < len(t.path) {
		return t.costs[t.pos] - t.offset
	}
	return 0
}

// Schedule returns the pending events in order. The slice must not be
// modified.
func (t *Taxi) Schedule() []Event { return t.schedule[t.nextEvent:] }

// Route returns the remaining planned polyline starting at the current
// position. The slice must not be modified.
func (t *Taxi) Route() []roadnet.VertexID {
	if len(t.path) == 0 {
		return nil
	}
	return t.path[t.pos:]
}

// RemainingMeters returns the travel distance left on the current plan,
// i.e. cost(R_tj) measured from the current position — the baseline of the
// detour cost in Eq. 4.
func (t *Taxi) RemainingMeters() float64 {
	if len(t.path) == 0 {
		return 0
	}
	var m float64
	for i := t.pos; i < len(t.costs); i++ {
		m += t.costs[i]
	}
	return m - t.offset
}

// OccupiedSeats returns the seats currently occupied.
func (t *Taxi) OccupiedSeats() int { return t.seats }

// IdleSeats returns the free seats.
func (t *Taxi) IdleSeats() int { return t.Capacity - t.seats }

// Empty reports whether the taxi has no assigned or onboard passengers
// (S_tj = ∅), making it eligible for the empty-taxi path of candidate
// search.
func (t *Taxi) Empty() bool { return len(t.waiting) == 0 && len(t.onboard) == 0 }

// Waiting returns the assigned-but-not-picked-up requests.
func (t *Taxi) Waiting() []*Request { return requestSlice(t.waiting) }

// Onboard returns the picked-up requests.
func (t *Taxi) Onboard() []*Request { return requestSlice(t.onboard) }

func requestSlice(m map[RequestID]*Request) []*Request {
	out := make([]*Request, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	return out
}

// MobilityVector returns the taxi's mobility vector per §IV-B2: from the
// current position toward the centroid of its passengers' destinations.
// ok is false for empty taxis, which have no travel destination and are
// not mobility-clustered.
func (t *Taxi) MobilityVector() (geo.MobilityVector, bool) {
	if t.Empty() {
		return geo.MobilityVector{}, false
	}
	var dests []geo.Point
	for _, r := range t.waiting {
		dests = append(dests, r.DestPt)
	}
	for _, r := range t.onboard {
		dests = append(dests, r.DestPt)
	}
	return geo.NewMobilityVector(t.Point(), geo.Centroid(dests)), true
}

// SetPlan installs a new schedule and its route legs. legs[i] is the
// travel path from the previous event's vertex (legs[0] from NextVertex())
// to events[i].Vertex(); each leg's first vertex must equal the previous
// leg's last. The taxi's committed mid-edge progress is preserved by
// prepending the committed edge. Events for requests the taxi doesn't yet
// know are registered as waiting.
//
// A plan with no events but a non-empty single leg is a cruise (used by
// probabilistic seeking of offline passengers); SetPlan(nil, nil) parks
// the taxi.
func (t *Taxi) SetPlan(events []Event, legs [][]roadnet.VertexID) error {
	start := t.NextVertex()
	if len(legs) != len(events) && !(len(events) == 0 && len(legs) <= 1) {
		return fmt.Errorf("fleet: taxi %d: %d legs for %d events", t.ID, len(legs), len(events))
	}
	// Stitch legs into one polyline.
	newPath := []roadnet.VertexID{start}
	eventPos := make([]int, 0, len(events))
	for i, leg := range legs {
		if len(leg) == 0 {
			return fmt.Errorf("fleet: taxi %d: empty leg %d", t.ID, i)
		}
		if leg[0] != newPath[len(newPath)-1] {
			return fmt.Errorf("fleet: taxi %d: leg %d starts at %d, want %d",
				t.ID, i, leg[0], newPath[len(newPath)-1])
		}
		newPath = append(newPath, leg[1:]...)
		if i < len(events) {
			if end := leg[len(leg)-1]; end != events[i].Vertex() {
				return fmt.Errorf("fleet: taxi %d: leg %d ends at %d, event at %d",
					t.ID, i, end, events[i].Vertex())
			}
			eventPos = append(eventPos, len(newPath)-1)
		}
	}
	// Preserve the committed edge when mid-edge.
	var prefix []roadnet.VertexID
	var prefixOffset float64
	if t.offset > 0 && t.pos+1 < len(t.path) {
		prefix = []roadnet.VertexID{t.path[t.pos]}
		prefixOffset = t.offset
		for i := range eventPos {
			eventPos[i]++
		}
	}
	full := append(prefix, newPath...)
	costs := make([]float64, len(full)-1)
	for i := 0; i+1 < len(full); i++ {
		c, ok := t.g.EdgeCost(full[i], full[i+1])
		if !ok {
			return fmt.Errorf("fleet: taxi %d: plan uses missing edge (%d,%d)", t.ID, full[i], full[i+1])
		}
		costs[i] = c
	}
	// Validate event requests without mutating state, then register.
	seen := make(map[RequestID]bool, len(events))
	hasPickup := make(map[RequestID]bool, len(events))
	for _, e := range events {
		seen[e.Req.ID] = true
		switch e.Kind {
		case Pickup:
			if _, dup := t.onboard[e.Req.ID]; dup {
				return fmt.Errorf("fleet: taxi %d: pickup for onboard request %d", t.ID, e.Req.ID)
			}
			hasPickup[e.Req.ID] = true
		case Dropoff:
			if _, ok := t.onboard[e.Req.ID]; ok {
				continue
			}
			// Dropoff must pair with an earlier pickup in this plan or an
			// already-known waiting request.
			if _, ok := t.waiting[e.Req.ID]; !ok && !hasPickup[e.Req.ID] {
				return fmt.Errorf("fleet: taxi %d: dropoff for unknown request %d", t.ID, e.Req.ID)
			}
		}
	}
	// Every waiting/onboard request must still be covered by the plan.
	for id := range t.waiting {
		if !seen[id] {
			return fmt.Errorf("fleet: taxi %d: plan drops waiting request %d", t.ID, id)
		}
	}
	for id := range t.onboard {
		if !seen[id] {
			return fmt.Errorf("fleet: taxi %d: plan drops onboard request %d", t.ID, id)
		}
	}
	for _, e := range events {
		if e.Kind == Pickup {
			t.waiting[e.Req.ID] = e.Req
		}
	}

	if len(full) < 2 && len(events) == 0 {
		// Parked (possibly with zero-length cruise).
		t.idleAt = start
		t.path = nil
		t.costs = nil
		t.pos = 0
		t.offset = 0
	} else {
		t.path = full
		t.costs = costs
		t.pos = 0
		t.offset = prefixOffset
	}
	t.schedule = events
	t.eventPos = eventPos
	t.nextEvent = 0
	return nil
}

// EventVisit reports an event the taxi just executed during Advance.
type EventVisit struct {
	Event Event
	// MetersIntoTick is the distance travelled within the Advance call
	// before the event fired, letting callers timestamp it exactly.
	MetersIntoTick float64
}

// Advance moves the taxi up to dist meters along its plan, firing schedule
// events as their vertices are reached and returning them in order. Seat
// accounting is updated as events fire. A taxi with no plan stays parked.
func (t *Taxi) Advance(dist float64) []EventVisit {
	var visits []EventVisit
	moved := 0.0
	fire := func() {
		for t.nextEvent < len(t.schedule) && t.eventPos[t.nextEvent] == t.pos {
			e := t.schedule[t.nextEvent]
			t.applyEvent(e)
			visits = append(visits, EventVisit{Event: e, MetersIntoTick: moved})
			t.nextEvent++
		}
	}
	if len(t.path) == 0 {
		return nil
	}
	fire() // events at the current vertex (e.g. pickup at the start)
	for dist > 1e-9 && t.pos+1 < len(t.path) {
		edge := t.costs[t.pos]
		step := math.Min(dist, edge-t.offset)
		t.offset += step
		dist -= step
		moved += step
		t.odometer += step
		if t.offset >= edge-1e-9 {
			t.pos++
			t.offset = 0
			fire()
		}
	}
	if t.pos+1 >= len(t.path) && t.nextEvent >= len(t.schedule) {
		// Plan complete: park at the final vertex.
		t.idleAt = t.path[len(t.path)-1]
		t.path = nil
		t.costs = nil
		t.pos = 0
		t.offset = 0
		t.schedule = nil
		t.eventPos = nil
		t.nextEvent = 0
	}
	return visits
}

func (t *Taxi) applyEvent(e Event) {
	switch e.Kind {
	case Pickup:
		if _, ok := t.waiting[e.Req.ID]; ok {
			delete(t.waiting, e.Req.ID)
			t.onboard[e.Req.ID] = e.Req
			t.seats += e.Req.Passengers
		}
	case Dropoff:
		if _, ok := t.onboard[e.Req.ID]; ok {
			delete(t.onboard, e.Req.ID)
			t.seats -= e.Req.Passengers
		}
	}
}

// EvalParamsAt builds the EvaluateSchedule parameters for this taxi at the
// given simulation time and speed.
func (t *Taxi) EvalParamsAt(nowSeconds, speedMps float64) EvalParams {
	return EvalParams{
		NowSeconds:   nowSeconds,
		SpeedMps:     speedMps,
		Start:        t.NextVertex(),
		LeadMeters:   t.LeadMeters(),
		Capacity:     t.Capacity,
		OnboardSeats: t.seats,
	}
}
