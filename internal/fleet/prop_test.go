package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/roadnet"
)

// This file is the property layer over the insertion machinery: random
// request streams are committed through BestInsertion exactly the way the
// dispatch engine commits them, and every committed schedule is
// re-checked by an independent walker that knows nothing about
// EvaluateSchedule's internals. A failure reports the seed plus a
// delta-minimized request list, so the reproducer is a handful of
// requests rather than a 60-request stream.

// propRequest is one generated request in a reproducer-friendly form.
type propRequest struct {
	ID         int64
	O, D       roadnet.VertexID
	ReleaseSec float64
	Flex       float64
	Passengers int
}

func (pr propRequest) String() string {
	return fmt.Sprintf("{ID:%d O:%d D:%d Release:%gs Flex:%g Pax:%d}",
		pr.ID, pr.O, pr.D, pr.ReleaseSec, pr.Flex, pr.Passengers)
}

func (pr propRequest) build(coster LegCoster, speed float64) *Request {
	direct, _ := coster(pr.O, pr.D)
	release := time.Duration(pr.ReleaseSec * float64(time.Second))
	return &Request{
		ID:           RequestID(pr.ID),
		ReleaseAt:    release,
		Origin:       pr.O,
		Dest:         pr.D,
		Deadline:     release + time.Duration(direct/speed*pr.Flex*float64(time.Second)),
		DirectMeters: direct,
		Passengers:   pr.Passengers,
	}
}

// propStream generates n random requests over the graph. Flexibility is
// drawn tight (down to 1.05) so many streams probe the deadline boundary,
// and multi-passenger requests probe the capacity boundary.
func propStream(g *roadnet.Graph, rng *rand.Rand, n int) []propRequest {
	nv := g.NumVertices()
	out := make([]propRequest, 0, n)
	clock := 0.0
	for i := 0; i < n; i++ {
		o := roadnet.VertexID(rng.Intn(nv))
		d := roadnet.VertexID(rng.Intn(nv))
		if o == d {
			continue
		}
		clock += rng.Float64() * 40
		out = append(out, propRequest{
			ID:         int64(i + 1),
			O:          o,
			D:          d,
			ReleaseSec: clock,
			Flex:       1.05 + rng.Float64()*0.95,
			Passengers: 1 + rng.Intn(3),
		})
	}
	return out
}

// checkCommitted independently verifies the three invariants of a
// committed schedule under the params it was committed with: occupancy
// never exceeds capacity (and never goes negative), every pickup and
// dropoff meets its (inclusive) deadline, and no dropoff precedes its own
// pickup. The arithmetic mirrors EvaluateSchedule leg by leg so exact
// float comparison is valid, but the bookkeeping is written from scratch.
func checkCommitted(events []Event, coster LegCoster, p EvalParams) error {
	seats := p.OnboardSeats
	droppedBeforePickup := make(map[RequestID]bool)
	pickedUp := make(map[RequestID]bool)
	at := p.Start
	meters := p.LeadMeters
	for i, e := range events {
		leg, ok := coster(at, e.Vertex())
		if !ok {
			return fmt.Errorf("event %d: unroutable leg %d->%d", i, at, e.Vertex())
		}
		meters += leg
		at = e.Vertex()
		t := p.NowSeconds + meters/p.SpeedMps
		switch e.Kind {
		case Pickup:
			if droppedBeforePickup[e.Req.ID] {
				return fmt.Errorf("event %d: pickup of request %d after its dropoff", i, e.Req.ID)
			}
			pickedUp[e.Req.ID] = true
			if pd := e.Req.PickupDeadline(p.SpeedMps).Seconds(); t > pd {
				return fmt.Errorf("event %d: pickup of request %d at t=%g past pickup deadline %g", i, e.Req.ID, t, pd)
			}
			seats += e.Req.Passengers
			if seats > p.Capacity {
				return fmt.Errorf("event %d: %d seats occupied, capacity %d", i, seats, p.Capacity)
			}
		case Dropoff:
			if !pickedUp[e.Req.ID] {
				// Legal only when the passenger is already onboard (their
				// pickup happened before this schedule window).
				droppedBeforePickup[e.Req.ID] = true
			}
			if dl := e.Req.Deadline.Seconds(); t > dl {
				return fmt.Errorf("event %d: dropoff of request %d at t=%g past deadline %g", i, e.Req.ID, t, dl)
			}
			seats -= e.Req.Passengers
			if seats < 0 {
				return fmt.Errorf("event %d: negative occupancy %d", i, seats)
			}
		}
	}
	return nil
}

// runPropStream replays a request stream through BestInsertion against a
// single taxi, popping events whose committed arrival has passed (the
// taxi "executes" its plan between requests), and re-checks every
// committed schedule. Returns the first invariant violation, or nil.
func runPropStream(g *roadnet.Graph, reqs []propRequest, capacity int) error {
	const speed = 10.0
	cache := map[roadnet.VertexID]*roadnet.SSSPResult{}
	coster := func(u, v roadnet.VertexID) (float64, bool) {
		sp := cache[u]
		if sp == nil {
			sp = g.SSSP(u)
			cache[u] = sp
		}
		d := sp.Dist[v]
		return d, !math.IsInf(d, 1)
	}
	start := roadnet.VertexID(0)
	onboard := 0
	var schedule []Event
	var arrivals []float64
	for _, pr := range reqs {
		now := pr.ReleaseSec
		// Execute the plan up to now: pop events whose committed arrival
		// has passed, moving the taxi and its seat count.
		for len(schedule) > 0 && arrivals[0] <= now {
			e := schedule[0]
			start = e.Vertex()
			if e.Kind == Pickup {
				onboard += e.Req.Passengers
			} else {
				onboard -= e.Req.Passengers
			}
			schedule = schedule[1:]
			arrivals = arrivals[1:]
		}
		req := pr.build(coster, speed)
		p := EvalParams{
			NowSeconds:   now,
			SpeedMps:     speed,
			Start:        start,
			Capacity:     capacity,
			OnboardSeats: onboard,
		}
		best, ev, ok := BestInsertion(schedule, req, coster, p, false)
		if !ok {
			continue
		}
		if err := checkCommitted(best, coster, p); err != nil {
			return err
		}
		schedule = best
		arrivals = ev.ArrivalSeconds
	}
	return nil
}

// minimizeStream shrinks a failing request stream by repeatedly dropping
// requests while the violation persists (greedy ddmin), so the reported
// reproducer is close to minimal.
func minimizeStream(g *roadnet.Graph, reqs []propRequest, capacity int) []propRequest {
	cur := append([]propRequest(nil), reqs...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			trial := append(append([]propRequest(nil), cur[:i]...), cur[i+1:]...)
			if runPropStream(g, trial, capacity) != nil {
				cur = trial
				changed = true
				i--
			}
		}
	}
	return cur
}

// TestScheduleInsertionInvariants is the satellite property test: many
// seeded random request streams, every committed schedule re-verified by
// an independent checker. On failure it prints the seed and the minimized
// request list — paste the list into runPropStream to reproduce.
func TestScheduleInsertionInvariants(t *testing.T) {
	g, err := roadnet.GenerateCity(roadnet.DefaultCityParams(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := 2 + rng.Intn(3)
		reqs := propStream(g, rng, 60)
		if err := runPropStream(g, reqs, capacity); err != nil {
			min := minimizeStream(g, reqs, capacity)
			t.Fatalf("seed %d capacity %d: %v\nminimized reproducer (%d of %d requests): %v",
				seed, capacity, err, len(min), len(reqs), min)
		}
	}
}

// TestCheckCommittedCatchesViolations proves the independent checker has
// teeth: hand-built schedules that break each invariant must be rejected,
// otherwise a green property test means nothing.
func TestCheckCommittedCatchesViolations(t *testing.T) {
	g := testGraph()
	coster := func(u, v roadnet.VertexID) (float64, bool) {
		d, _, ok := g.ShortestPath(u, v)
		return d, ok
	}
	p := EvalParams{NowSeconds: 0, SpeedMps: 10, Start: 0, Capacity: 1}
	roomy := testRequest(g, 1, 1, 3, 0, time.Hour)
	second := testRequest(g, 2, 1, 3, 0, time.Hour)
	late := testRequest(g, 3, 1, 3, 0, 150*time.Second) // direct needs 200 s

	cases := []struct {
		name   string
		events []Event
	}{
		{"capacity exceeded", []Event{
			{Kind: Pickup, Req: roomy}, {Kind: Pickup, Req: second},
			{Kind: Dropoff, Req: roomy}, {Kind: Dropoff, Req: second},
		}},
		{"dropoff before pickup then pickup", []Event{
			{Kind: Dropoff, Req: roomy}, {Kind: Pickup, Req: roomy},
		}},
		{"deadline violated", []Event{
			{Kind: Pickup, Req: late}, {Kind: Dropoff, Req: late},
		}},
	}
	for _, tc := range cases {
		if err := checkCommitted(tc.events, coster, p); err == nil {
			t.Errorf("%s: checker accepted an invalid schedule", tc.name)
		}
	}
	// And a valid schedule must pass.
	good := []Event{{Kind: Pickup, Req: roomy}, {Kind: Dropoff, Req: roomy}}
	if err := checkCommitted(good, coster, p); err != nil {
		t.Errorf("checker rejected a valid schedule: %v", err)
	}
}
