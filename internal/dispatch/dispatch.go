// Package dispatch defines the scheme-facing contract between the
// simulation engine and the ridesharing dispatchers (mT-Share and the
// baselines), so the evaluation harness can swap schemes freely.
package dispatch

import "repro/internal/fleet"

// Outcome reports a dispatch attempt.
type Outcome struct {
	// Served is true when a taxi was assigned and its plan installed.
	Served bool
	// TaxiID is the assigned taxi when Served.
	TaxiID int64
	// Candidates is the number of candidate taxis examined (Table III).
	Candidates int
}

// BatchResult pairs one request of a batch re-dispatch with its outcome.
type BatchResult struct {
	Req *fleet.Request
	Out Outcome
	// Conflict marks a result that had to be re-evaluated after an
	// earlier commit in the same batch took its first-choice taxi.
	Conflict bool
}

// BatchDispatcher is an optional Scheme extension used by the pending
// queue's retry loop: evaluate a batch of parked requests against the
// current fleet and commit winners in deterministic (pickup deadline,
// request ID) order. The simulator falls back to per-request OnRequest
// calls in the same order for schemes that do not implement it.
type BatchDispatcher interface {
	OnBatch(reqs []*fleet.Request, nowSeconds float64) []BatchResult
}

// Scheme is a ridesharing dispatcher under simulation.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// AddTaxi registers a taxi with the scheme's indexes.
	AddTaxi(t *fleet.Taxi, nowSeconds float64)
	// OnRequest attempts to serve an online request released now.
	OnRequest(req *fleet.Request, nowSeconds float64) Outcome
	// OnTaxiAdvanced lets the scheme refresh its indexes after the taxi
	// moved during a simulation tick.
	OnTaxiAdvanced(t *fleet.Taxi, nowSeconds float64)
	// OnRequestCompleted tells the scheme a request was delivered.
	OnRequestCompleted(req *fleet.Request, nowSeconds float64)
	// TryServeOffline handles a roadside encounter between taxi t and an
	// offline request; it returns true when the taxi now serves it.
	TryServeOffline(t *fleet.Taxi, req *fleet.Request, nowSeconds float64) bool
	// PlanIdle optionally plans a cruise for an idle taxi (probabilistic
	// seeking of offline passengers); it returns true when a plan was
	// installed.
	PlanIdle(t *fleet.Taxi, nowSeconds float64) bool
	// SupportsOfflineDispatch reports whether a failed roadside insertion
	// should fall back to a full dispatch (mT-Share's server-side
	// behaviour; the adjusted baselines only insert on encounter).
	SupportsOfflineDispatch() bool
	// IndexMemoryBytes reports the scheme's index footprint (Table IV).
	IndexMemoryBytes() int64
}
