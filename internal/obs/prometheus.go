package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (version 0.0.4), sorted by name: counters as
// `<name> <value>` with TYPE counter, gauges with TYPE gauge, and
// histograms as cumulative `<name>_bucket{le="..."}` series plus
// `<name>_sum` and `<name>_count`. Instruments registered through a
// Labeled view carry their label set (`name{shard="0"}`); the TYPE
// comment is emitted once per metric family (base name), not per series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	lastBase := ""
	writeType := func(base, kind string) error {
		if base == lastBase {
			return nil
		}
		lastBase = base
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	for _, name := range sortedSeries(s.Counters) {
		base, labels := splitName(name)
		if err := writeType(base, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", base, labels, s.Counters[name]); err != nil {
			return err
		}
	}
	lastBase = ""
	for _, name := range sortedSeries(s.Gauges) {
		base, labels := splitName(name)
		if err := writeType(base, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", base, labels, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	lastBase = ""
	for _, name := range sortedSeries(s.Histograms) {
		h := s.Histograms[name]
		base, labels := splitName(name)
		if err := writeType(base, "histogram"); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLabels(labels, "le="+strconv.Quote(formatFloat(bound))), cum); err != nil {
				return err
			}
		}
		cum += h.Buckets[len(h.Buckets)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %s\n%s_count%s %d\n",
			base, mergeLabels(labels, `le="+Inf"`), cum,
			base, labels, formatFloat(h.Sum),
			base, labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// splitName separates a registered instrument name into its base metric
// name and its label set (including braces), e.g.
// `mtshare_match_dispatches_total{shard="0"}` ->
// (`mtshare_match_dispatches_total`, `{shard="0"}`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// mergeLabels appends extra labels (e.g. the histogram le bound) to an
// existing brace-wrapped label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedSeries orders registered names by (base name, label set) so every
// series of one metric family is contiguous — a plain string sort would
// interleave `foo_bar` between `foo` and `foo{...}` and split foo's TYPE
// group in two.
func sortedSeries[V any](m map[string]V) []string {
	keys := sortedKeys(m)
	sort.SliceStable(keys, func(i, j int) bool {
		bi, li := splitName(keys[i])
		bj, lj := splitName(keys[j])
		if bi != bj {
			return bi < bj
		}
		return li < lj
	})
	return keys
}
