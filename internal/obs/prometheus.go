package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (version 0.0.4), sorted by name: counters as
// `<name> <value>` with TYPE counter, gauges with TYPE gauge, and
// histograms as cumulative `<name>_bucket{le="..."}` series plus
// `<name>_sum` and `<name>_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.Buckets[len(h.Buckets)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, cum, name, formatFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
