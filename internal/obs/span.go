package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer decides which operations get a span tree and receives the
// finished trees. It samples deterministically: one root in every
// SampleEvery is traced, so the overhead of tracing is bounded and
// predictable under load.
type Tracer struct {
	every   int64
	n       atomic.Int64
	handler func(root *Span)
}

// NewTracer builds a tracer sampling one root span in every sampleEvery
// (<= 0 disables sampling entirely); handler receives each sampled root
// after it ends and may be nil.
func NewTracer(sampleEvery int, handler func(root *Span)) *Tracer {
	return &Tracer{every: int64(sampleEvery), handler: handler}
}

// sample reports whether the next root should be traced.
func (t *Tracer) sample() bool {
	if t == nil || t.every <= 0 {
		return false
	}
	return t.n.Add(1)%t.every == 1 || t.every == 1
}

// Span is one timed operation in a dispatch trace. Child spans attach to
// the span found in the context at StartSpan time; a nil *Span is a valid
// no-op (the common unsampled case), so callers never branch on sampling.
type Span struct {
	Name     string
	Start    time.Time
	Duration time.Duration

	tracer *Tracer // non-nil on roots only

	mu       sync.Mutex
	children []*Span
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying the tracer; StartSpan consults it
// when starting a root span.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer carried by the context, if any.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// StartSpan starts a span named name. Inside an active span it always
// creates a child; otherwise it starts a root span only when the
// context's tracer samples this call. The returned context carries the
// new span for nested StartSpan calls; the returned *Span may be nil
// (no-op) and must still be End()ed, which is safe.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent, ok := ctx.Value(spanKey).(*Span); ok && parent != nil {
		s := &Span{Name: name, Start: time.Now()}
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
		return context.WithValue(ctx, spanKey, s), s
	}
	t := TracerFrom(ctx)
	if !t.sample() {
		return ctx, nil
	}
	s := &Span{Name: name, Start: time.Now(), tracer: t}
	return context.WithValue(ctx, spanKey, s), s
}

// End finishes the span; on a sampled root it hands the finished tree to
// the tracer's handler. End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	if s.tracer != nil && s.tracer.handler != nil {
		s.tracer.handler(s)
	}
}

// Children returns the child spans in start order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Tree renders the span tree as an indented duration breakdown, e.g.
//
//	dispatch 1.2ms
//	  dispatch.candidates 0.6ms
//	  dispatch.scheduling 0.5ms
func (s *Span) Tree() string {
	var b strings.Builder
	s.writeTree(&b, 0)
	return b.String()
}

func (s *Span) writeTree(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%s %v\n", strings.Repeat("  ", depth), s.Name, s.Duration.Round(time.Microsecond))
	for _, c := range s.Children() {
		c.writeTree(b, depth+1)
	}
}
