// Package obs is the reproduction's dependency-free observability layer:
// a metrics registry of atomic counters, gauges, and fixed-bucket latency
// histograms with a Prometheus text exposition, plus lightweight span
// tracing for sampled dispatch calls. Every hot-path package (match,
// roadnet, index, sim, server) registers its instruments here under the
// naming scheme mtshare_<pkg>_<name>, so one scrape of GET /v1/metrics
// (or one Snapshot call) sees the whole pipeline.
//
// Instruments are cheap enough for per-dispatch use: a counter update is
// one atomic add, a histogram observation is a bounds scan plus two
// atomic updates. Registries are independent — a System, Server, or test
// builds its own so counters never bleed across instances — with a
// process-wide Default() for tools that want a single surface.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named instruments. All methods are safe for concurrent
// use; Counter/Gauge/Histogram return the existing instrument when the
// name is already registered, so independent packages can share a name.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// labels, when non-empty, decorates every name registered through this
	// handle as name{labels} — a label set in the Prometheus sense. root
	// points at the registry owning the maps; nil means this handle is the
	// root itself. Labeled views share the root's instruments, so one
	// Snapshot or scrape sees every shard's series side by side.
	labels string
	root   *Registry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// base resolves the registry owning the instrument maps.
func (r *Registry) base() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

// decorate applies the handle's label set to an instrument name.
func (r *Registry) decorate(name string) string {
	if r.labels == "" {
		return name
	}
	return name + "{" + r.labels + "}"
}

// Labeled returns a view of the registry that registers every instrument
// under name{labels} instead of name — e.g. Labeled(`shard="2"`) turns
// mtshare_match_dispatches_total into
// mtshare_match_dispatches_total{shard="2"}. The view shares the
// underlying registry: Snapshot and WritePrometheus on either handle see
// all series. Labels compose; labelling a labelled view appends to its
// label set. labels must be a well-formed Prometheus label list
// (k="v",...) — the registry does not parse it.
func (r *Registry) Labeled(labels string) *Registry {
	combined := labels
	if r.labels != "" {
		combined = r.labels + "," + labels
	}
	return &Registry{labels: combined, root: r.base()}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Libraries default to their
// own per-instance registries; Default is for tools that want one surface
// across everything they build.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	name = r.decorate(name)
	r = r.base()
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	name = r.decorate(name)
	r = r.base()
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the latency histogram registered under name with the
// default latency buckets, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith returns the histogram registered under name, creating it
// with the given ascending upper bounds on first use (nil means
// DefLatencyBuckets). Bounds are fixed at creation; a later call with
// different bounds returns the existing histogram unchanged.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	name = r.decorate(name)
	r = r.base()
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (compare-and-swap loop; gauges are off the hot path).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefLatencyBuckets are the default histogram bounds in seconds: roughly
// exponential from 1 µs to 10 s, sized for dispatch-stage latencies.
func DefLatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Histogram is a fixed-bucket histogram of float64 observations
// (latencies in seconds by convention). Observations are lock-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf overflow
	counts []atomic.Int64
	sum    Gauge
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets()
	} else {
		bounds = append([]float64(nil), bounds...)
		sort.Float64s(bounds)
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since t0 and returns them.
func (h *Histogram) ObserveSince(t0 time.Time) float64 {
	d := time.Since(t0).Seconds()
	h.Observe(d)
	return d
}

// Snapshot returns a consistent point-in-time view. Count is derived from
// the bucket reads themselves, so Count always equals the sum of Buckets
// even while observations race with the snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Value()
	return s
}

// HistogramSnapshot is a point-in-time histogram state.
type HistogramSnapshot struct {
	// Bounds are the ascending upper bounds; Buckets has one extra final
	// entry counting observations above the last bound (the +Inf bucket).
	Bounds  []float64
	Buckets []int64
	Count   int64
	Sum     float64
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the owning bucket, the way Prometheus histogram_quantile does.
// It returns 0 for an empty histogram; values in the overflow bucket
// report the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) { // overflow bucket: clamp to last bound
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if n == 0 {
			return hi
		}
		inBucket := rank - float64(cum-n)
		return lo + (hi-lo)*inBucket/float64(n)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the mean observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// RestoreCounters adds the given values onto the registry's counters,
// registering any that do not exist yet. Keys are fully decorated series
// names (labels included) exactly as Snapshot returns them; because the
// root handle decorates names as-is, a later Labeled view that registers
// the same series finds and shares the restored instrument. Used by the
// durability layer to re-seed deterministic counter families from a
// snapshot — values are deltas on freshly built (zero-valued)
// instruments, so restore must run before any dispatch activity.
func (r *Registry) RestoreCounters(counters map[string]int64) {
	root := r.base()
	for name, v := range counters {
		root.Counter(name).Add(v)
	}
}

// Snapshot is a full-registry point-in-time view.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures every instrument's current value. On a labelled view
// it captures the whole underlying registry, labelled series included.
func (r *Registry) Snapshot() Snapshot {
	r = r.base()
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
