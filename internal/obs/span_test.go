package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestSpanNoTracerIsNoop(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "dispatch")
	if sp != nil {
		t.Fatal("span started without a tracer")
	}
	sp.End() // nil-safe
	// Children of a nil span are also no-ops.
	_, child := StartSpan(ctx, "dispatch.candidates")
	if child != nil {
		t.Fatal("child span started without a root")
	}
	child.End()
}

func TestSpanSampling(t *testing.T) {
	var roots []*Span
	tr := NewTracer(3, func(s *Span) { roots = append(roots, s) })
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 9; i++ {
		_, sp := StartSpan(ctx, "dispatch")
		sp.End()
	}
	if len(roots) != 3 {
		t.Fatalf("sampled %d of 9 roots at 1-in-3, want 3", len(roots))
	}
}

func TestSpanTree(t *testing.T) {
	var root *Span
	tr := NewTracer(1, func(s *Span) { root = s })
	ctx := WithTracer(context.Background(), tr)
	ctx, sp := StartSpan(ctx, "dispatch")
	cctx, c1 := StartSpan(ctx, "dispatch.candidates")
	_, gc := StartSpan(cctx, "dispatch.candidates.index")
	gc.End()
	c1.End()
	_, c2 := StartSpan(ctx, "dispatch.scheduling")
	c2.End()
	sp.End()
	if root == nil {
		t.Fatal("root never delivered")
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name != "dispatch.candidates" || kids[1].Name != "dispatch.scheduling" {
		t.Fatalf("children = %+v", kids)
	}
	if len(kids[0].Children()) != 1 {
		t.Fatal("grandchild lost")
	}
	tree := root.Tree()
	for _, want := range []string{"dispatch ", "  dispatch.candidates", "    dispatch.candidates.index", "  dispatch.scheduling"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

// TestSpanConcurrentChildren attaches children from parallel goroutines
// (the dispatch fan-out shape) and checks none are lost.
func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer(1, nil)
	ctx := WithTracer(context.Background(), tr)
	ctx, sp := StartSpan(ctx, "dispatch")
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, c := StartSpan(ctx, "dispatch.eval")
			c.End()
		}()
	}
	wg.Wait()
	sp.End()
	if got := len(sp.Children()); got != n {
		t.Fatalf("children = %d, want %d", got, n)
	}
}
