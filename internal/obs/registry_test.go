package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mtshare_test_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("mtshare_test_total") != c {
		t.Fatal("counter not deduplicated by name")
	}
	g := r.Gauge("mtshare_test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

// TestHistogramQuantiles feeds a known distribution and checks that the
// interpolated quantiles land in the right buckets.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("lat", []float64{0.01, 0.1, 1, 10})
	// 90 observations in (0, 0.01], 9 in (0.01, 0.1], 1 in (0.1, 1].
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05)
	}
	h.Observe(0.5)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0.5); got <= 0 || got > 0.01 {
		t.Fatalf("p50 = %v, want in (0, 0.01]", got)
	}
	if got := s.Quantile(0.95); got <= 0.01 || got > 0.1 {
		t.Fatalf("p95 = %v, want in (0.01, 0.1]", got)
	}
	if got := s.Quantile(0.99); got <= 0.01 || got > 0.1 {
		t.Fatalf("p99 = %v, want in (0.01, 0.1]", got)
	}
	if got := s.Quantile(1); got <= 0.1 || got > 1 {
		t.Fatalf("p100 = %v, want in (0.1, 1]", got)
	}
	wantSum := 90*0.005 + 9*0.05 + 0.5
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if math.Abs(s.Mean()-wantSum/100) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("lat", []float64{1, 2})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	h.Observe(100) // overflow bucket
	s := h.Snapshot()
	if s.Buckets[len(s.Buckets)-1] != 1 {
		t.Fatalf("overflow not counted: %v", s.Buckets)
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want last bound 2", got)
	}
}

// TestSnapshotConsistency hammers a histogram from several goroutines
// while snapshotting: every snapshot must satisfy Count == sum(Buckets),
// and the final totals must equal the observation count.
func TestSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mtshare_test_seconds")
	const workers, perWorker = 8, 5000
	stop := make(chan struct{})
	bad := make(chan [2]int64, 1)
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum int64
			for _, n := range s.Buckets {
				sum += n
			}
			if sum != s.Count {
				select {
				case bad <- [2]int64{sum, s.Count}:
				default:
				}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%7) * 1e-4)
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	select {
	case mismatch := <-bad:
		t.Fatalf("snapshot bucket sum %d != count %d", mismatch[0], mismatch[1])
	default:
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("mtshare_match_dispatches_total").Add(3)
	r.Gauge("mtshare_roadnet_cached_trees").Set(7)
	h := r.HistogramWith("mtshare_match_dispatch_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mtshare_match_dispatches_total counter",
		"mtshare_match_dispatches_total 3",
		"# TYPE mtshare_roadnet_cached_trees gauge",
		"mtshare_roadnet_cached_trees 7",
		"# TYPE mtshare_match_dispatch_seconds histogram",
		`mtshare_match_dispatch_seconds_bucket{le="0.001"} 1`,
		`mtshare_match_dispatch_seconds_bucket{le="0.01"} 2`,
		`mtshare_match_dispatch_seconds_bucket{le="+Inf"} 3`,
		"mtshare_match_dispatch_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
