package partition

import "fmt"

// ShardMap assigns every partition to exactly one shard of a sharded
// dispatcher. Shards own contiguous partition-ID ranges — partition IDs
// are dense and the bipartite builder groups geographically coherent
// vertices under nearby IDs, so contiguous ranges keep each shard's
// territory compact — balanced by member vertex count, not partition
// count, so a shard owning a few dense downtown partitions does not also
// own half the suburbs.
//
// The map is a pure function of (partitioning, shard count): building it
// twice over the same partitioning yields identical ownership, which is
// what makes shard routing a total, deterministic function of the pickup
// partition. It is immutable and safe for concurrent use.
type ShardMap struct {
	shards int
	of     []int    // partition ID -> owning shard
	lo, hi []ID     // shard -> inclusive partition-ID range
	verts  []int    // shard -> owned vertex count
}

// NewShardMap splits the partitioning's partitions into n contiguous
// shards balanced by vertex count. n must be at least 1 and at most the
// number of partitions (every shard owns at least one partition).
func NewShardMap(pt *Partitioning, n int) (*ShardMap, error) {
	k := pt.NumPartitions()
	if n < 1 {
		return nil, fmt.Errorf("partition: shard count %d < 1", n)
	}
	if n > k {
		return nil, fmt.Errorf("partition: %d shards over %d partitions — every shard needs at least one", n, k)
	}
	total := 0
	for p := 0; p < k; p++ {
		total += len(pt.Vertices(ID(p)))
	}
	sm := &ShardMap{
		shards: n,
		of:     make([]int, k),
		lo:     make([]ID, n),
		hi:     make([]ID, n),
		verts:  make([]int, n),
	}
	// Greedy contiguous sweep: each shard takes partitions until it holds
	// its fair share of the *remaining* vertices, leaving enough
	// partitions behind for every remaining shard to get at least one.
	p := 0
	remaining := total
	for s := 0; s < n; s++ {
		target := remaining / (n - s)
		sm.lo[s] = ID(p)
		count := 0
		for {
			count += len(pt.Vertices(ID(p)))
			sm.of[p] = s
			p++
			if p > k-(n-s-1)-1 { // leave one partition per remaining shard
				break
			}
			if count >= target && s < n-1 {
				break
			}
		}
		sm.hi[s] = ID(p - 1)
		sm.verts[s] = count
		remaining -= count
	}
	return sm, nil
}

// NumShards returns the shard count.
func (sm *ShardMap) NumShards() int { return sm.shards }

// ShardOf returns the shard owning partition p.
func (sm *ShardMap) ShardOf(p ID) int { return sm.of[p] }

// Range returns shard s's inclusive partition-ID range.
func (sm *ShardMap) Range(s int) (lo, hi ID) { return sm.lo[s], sm.hi[s] }

// VertexCount returns the number of road-graph vertices shard s owns.
func (sm *ShardMap) VertexCount(s int) int { return sm.verts[s] }
