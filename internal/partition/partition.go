// Package partition implements mT-Share's bipartite map partitioning
// (§IV-B1 of the paper): road-graph vertices are grouped by both geography
// and the transition patterns mined from historical trips, yielding
// partitions, per-partition landmarks (Definition 7), a landmark graph
// (Definition 8) with a landmark-to-landmark travel-cost table, and the
// per-vertex transition-probability vectors reused by probabilistic
// routing (Alg. 4). A uniform-grid partitioner is provided as the baseline
// used by T-Share/pGreedyDP and by the Table V ablation.
package partition

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// ID identifies a partition. IDs are dense, starting at 0.
type ID int32

// None is a sentinel ID denoting "no partition".
const None ID = -1

// OD is a historical trip snapped to road-network vertices; the transition
// statistics are mined from a slice of these.
type OD struct {
	O, D roadnet.VertexID
}

// SnapTrips snaps dataset trip endpoints to their nearest road vertices.
func SnapTrips(idx *roadnet.SpatialIndex, trips []struct{ Origin, Dest geo.Point }) []OD {
	out := make([]OD, 0, len(trips))
	for _, t := range trips {
		o, ok1 := idx.NearestVertex(t.Origin)
		d, ok2 := idx.NearestVertex(t.Dest)
		if ok1 && ok2 && o != d {
			out = append(out, OD{O: o, D: d})
		}
	}
	return out
}

// Partitioning is the immutable result of a map-partitioning run. All
// methods are safe for concurrent use.
type Partitioning struct {
	g      *roadnet.Graph
	assign []ID                 // vertex -> partition
	parts  [][]roadnet.VertexID // partition -> member vertices
	center []geo.Point          // partition -> centroid of member positions

	landmark []roadnet.VertexID // partition -> landmark vertex
	lmCost   [][]float64        // landmark-to-landmark network cost table
	adj      [][]ID             // landmark graph adjacency

	// trans[v] is vertex v's transition-probability vector over the final
	// partitions; rows sum to 1 (or are all zero if the vertex never
	// originated a historical trip and no smoothing applied).
	trans [][]float32
	// partTrans[p] aggregates trans over the vertices of p (mean), used to
	// seed probabilities for vertices without data.
	partTrans [][]float32
	// originW[p] is the fraction of historical trips originating in p —
	// the demand prior probabilistic cruising steers idle taxis by.
	originW []float64
}

// NumPartitions returns the number of partitions.
func (pt *Partitioning) NumPartitions() int { return len(pt.parts) }

// Graph returns the underlying road graph.
func (pt *Partitioning) Graph() *roadnet.Graph { return pt.g }

// PartitionOf returns the partition containing vertex v.
func (pt *Partitioning) PartitionOf(v roadnet.VertexID) ID { return pt.assign[v] }

// Vertices returns the member vertices of partition p. The slice must not
// be modified.
func (pt *Partitioning) Vertices(p ID) []roadnet.VertexID { return pt.parts[p] }

// Center returns the centroid of partition p's vertex positions.
func (pt *Partitioning) Center(p ID) geo.Point { return pt.center[p] }

// Landmark returns the landmark vertex of partition p (Definition 7).
func (pt *Partitioning) Landmark(p ID) roadnet.VertexID { return pt.landmark[p] }

// Landmarks returns all landmark vertices indexed by partition.
func (pt *Partitioning) Landmarks() []roadnet.VertexID { return pt.landmark }

// LandmarkCost returns the road-network travel cost between the landmarks
// of partitions a and b (meters); +Inf if unreachable.
func (pt *Partitioning) LandmarkCost(a, b ID) float64 { return pt.lmCost[a][b] }

// Adjacent returns the partitions adjacent to p in the landmark graph
// (Definition 8): those connected to p by at least one road edge.
func (pt *Partitioning) Adjacent(p ID) []ID { return pt.adj[p] }

// TransitionVector returns vertex v's transition-probability vector over
// all partitions. The slice must not be modified.
func (pt *Partitioning) TransitionVector(v roadnet.VertexID) []float32 { return pt.trans[v] }

// TransitionProb returns the probability that a historical ride starting
// at vertex v ended in partition p.
func (pt *Partitioning) TransitionProb(v roadnet.VertexID, p ID) float64 {
	return float64(pt.trans[v][p])
}

// PartitionTransitionVector returns the mean transition vector of partition
// p's vertices. The slice must not be modified.
func (pt *Partitioning) PartitionTransitionVector(p ID) []float32 { return pt.partTrans[p] }

// OriginWeight returns the fraction of historical trips that originated in
// partition p (uniform when no trip data was supplied).
func (pt *Partitioning) OriginWeight(p ID) float64 { return pt.originW[p] }

// MemoryBytes estimates the heap footprint of the partitioning, reported
// in the Table IV memory-overhead comparison.
func (pt *Partitioning) MemoryBytes() int64 {
	var b int64
	b += int64(len(pt.assign)) * 4
	for _, p := range pt.parts {
		b += int64(len(p))*4 + 24
	}
	b += int64(len(pt.center)) * 16
	b += int64(len(pt.landmark)) * 4
	for _, row := range pt.lmCost {
		b += int64(len(row))*8 + 24
	}
	for _, a := range pt.adj {
		b += int64(len(a))*4 + 24
	}
	for _, tr := range pt.trans {
		b += int64(len(tr))*4 + 24
	}
	for _, tr := range pt.partTrans {
		b += int64(len(tr))*4 + 24
	}
	return b
}

// PartitionsNear returns the distinct partitions owning at least one vertex
// within radiusMeters of p, i.e. the partitions intersecting the search
// disc of the candidate-taxi search (§IV-C1). The spatial index must be
// built over the same graph.
func (pt *Partitioning) PartitionsNear(idx *roadnet.SpatialIndex, p geo.Point, radiusMeters float64) []ID {
	seen := make(map[ID]struct{}, 8)
	var out []ID
	for _, v := range idx.VerticesWithin(p, radiusMeters) {
		id := pt.assign[v]
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		// An empty disc (radius smaller than vertex spacing) degenerates to
		// the partition of the nearest vertex, so a search always has at
		// least the request's own partition.
		if v, ok := idx.NearestVertex(p); ok {
			out = append(out, pt.assign[v])
		}
	}
	return out
}

// LandmarkVector returns the mobility vector pointing from partition a's
// landmark to partition b's landmark, used by the partition-filter
// direction rule and by probabilistic routing's suitability test.
func (pt *Partitioning) LandmarkVector(a, b ID) geo.MobilityVector {
	return geo.NewMobilityVector(pt.g.Point(pt.landmark[a]), pt.g.Point(pt.landmark[b]))
}

// validate checks internal consistency; builders call it before returning.
func (pt *Partitioning) validate() error {
	n := pt.g.NumVertices()
	if len(pt.assign) != n {
		return fmt.Errorf("partition: assign has %d entries for %d vertices", len(pt.assign), n)
	}
	counted := 0
	for p, vs := range pt.parts {
		if len(vs) == 0 {
			return fmt.Errorf("partition: empty partition %d", p)
		}
		counted += len(vs)
		for _, v := range vs {
			if pt.assign[v] != ID(p) {
				return fmt.Errorf("partition: vertex %d listed in %d but assigned %d", v, p, pt.assign[v])
			}
		}
	}
	if counted != n {
		return fmt.Errorf("partition: partitions cover %d of %d vertices", counted, n)
	}
	for p, l := range pt.landmark {
		if pt.assign[l] != ID(p) {
			return fmt.Errorf("partition: landmark %d of partition %d lies in partition %d", l, p, pt.assign[l])
		}
	}
	return nil
}

// finalize computes centers, landmarks, the landmark graph, the
// landmark-cost table, and transition vectors for an assignment. It is
// shared by the bipartite and grid builders.
func finalize(g *roadnet.Graph, assign []ID, numParts int, trips []OD) (*Partitioning, error) {
	pt := &Partitioning{g: g, assign: assign}
	pt.parts = make([][]roadnet.VertexID, numParts)
	for v, p := range assign {
		pt.parts[p] = append(pt.parts[p], roadnet.VertexID(v))
	}
	// Drop empty partitions, re-densifying IDs.
	remap := make([]ID, numParts)
	kept := 0
	for p := range pt.parts {
		if len(pt.parts[p]) == 0 {
			remap[p] = None
			continue
		}
		remap[p] = ID(kept)
		pt.parts[kept] = pt.parts[p]
		kept++
	}
	pt.parts = pt.parts[:kept]
	for v := range assign {
		assign[v] = remap[assign[v]]
	}

	pt.center = make([]geo.Point, kept)
	for p, vs := range pt.parts {
		pts := make([]geo.Point, len(vs))
		for i, v := range vs {
			pts[i] = g.Point(v)
		}
		pt.center[p] = geo.Centroid(pts)
	}
	pt.computeLandmarks()
	pt.computeLandmarkGraph()
	pt.computeTransitions(trips)
	if err := pt.validate(); err != nil {
		return nil, err
	}
	return pt, nil
}

// computeLandmarks picks each partition's landmark: among the few vertices
// nearest the partition centroid, the one minimising total network distance
// to a deterministic sample of partition members. This approximates the
// paper's exact medoid (min total distance to all members) at a fraction of
// the cost; for small partitions it is exact.
func (pt *Partitioning) computeLandmarks() {
	const candidates = 5
	const sampleCap = 24
	pt.landmark = make([]roadnet.VertexID, len(pt.parts))
	for p, vs := range pt.parts {
		c := pt.center[p]
		// Candidate vertices closest to the centroid.
		cand := nearestK(pt.g, vs, c, candidates)
		if len(cand) == 1 {
			pt.landmark[p] = cand[0]
			continue
		}
		// Deterministic sample of members (every k-th).
		step := len(vs)/sampleCap + 1
		var sample []roadnet.VertexID
		for i := 0; i < len(vs); i += step {
			sample = append(sample, vs[i])
		}
		best, bestSum := cand[0], math.Inf(1)
		for _, u := range cand {
			res := pt.g.SSSP(u)
			var sum float64
			for _, w := range sample {
				d := res.Dist[w]
				if math.IsInf(d, 1) {
					d = 10 * geo.Equirect(pt.g.Point(u), pt.g.Point(w)) // heavy penalty
				}
				sum += d
			}
			if sum < bestSum {
				best, bestSum = u, sum
			}
		}
		pt.landmark[p] = best
	}
}

// nearestK returns up to k vertices from vs closest to c (straight line).
func nearestK(g *roadnet.Graph, vs []roadnet.VertexID, c geo.Point, k int) []roadnet.VertexID {
	type vd struct {
		v roadnet.VertexID
		d float64
	}
	best := make([]vd, 0, k)
	for _, v := range vs {
		d := geo.Equirect(g.Point(v), c)
		if len(best) < k {
			best = append(best, vd{v, d})
			// Keep sorted ascending by d (k is tiny).
			for i := len(best) - 1; i > 0 && best[i].d < best[i-1].d; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			continue
		}
		if d < best[k-1].d {
			best[k-1] = vd{v, d}
			for i := k - 1; i > 0 && best[i].d < best[i-1].d; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	out := make([]roadnet.VertexID, len(best))
	for i, b := range best {
		out[i] = b.v
	}
	return out
}

// computeLandmarkGraph derives partition adjacency from road edges crossing
// partition borders and fills the landmark-to-landmark cost table with one
// Dijkstra tree per landmark.
func (pt *Partitioning) computeLandmarkGraph() {
	k := len(pt.parts)
	adjSet := make([]map[ID]struct{}, k)
	for p := range adjSet {
		adjSet[p] = make(map[ID]struct{})
	}
	for v := 0; v < pt.g.NumVertices(); v++ {
		pv := pt.assign[v]
		for _, a := range pt.g.Out(roadnet.VertexID(v)) {
			pw := pt.assign[a.To]
			if pv != pw {
				adjSet[pv][pw] = struct{}{}
				adjSet[pw][pv] = struct{}{}
			}
		}
	}
	pt.adj = make([][]ID, k)
	for p, set := range adjSet {
		for q := range set {
			pt.adj[p] = append(pt.adj[p], q)
		}
		sortIDs(pt.adj[p])
	}
	pt.lmCost = make([][]float64, k)
	for p := 0; p < k; p++ {
		res := pt.g.SSSP(pt.landmark[p])
		row := make([]float64, k)
		for q := 0; q < k; q++ {
			row[q] = res.Dist[pt.landmark[q]]
		}
		pt.lmCost[p] = row
	}
}

func sortIDs(ids []ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// computeTransitions fills per-vertex transition vectors over the final
// partitions from historical trips, with per-partition mean vectors as the
// smoothing fallback for vertices that never originated a trip.
func (pt *Partitioning) computeTransitions(trips []OD) {
	n := pt.g.NumVertices()
	k := len(pt.parts)
	counts := make([][]float32, n)
	totals := make([]float32, n)
	for _, t := range trips {
		if counts[t.O] == nil {
			counts[t.O] = make([]float32, k)
		}
		counts[t.O][pt.assign[t.D]]++
		totals[t.O]++
	}
	// Partition-level aggregate first (used as fallback).
	pt.partTrans = make([][]float32, k)
	for p, vs := range pt.parts {
		agg := make([]float32, k)
		var total float32
		for _, v := range vs {
			if counts[v] == nil {
				continue
			}
			for q, c := range counts[v] {
				agg[q] += c
			}
			total += totals[v]
		}
		if total > 0 {
			for q := range agg {
				agg[q] /= total
			}
		} else {
			// No data anywhere in the partition: uniform prior.
			for q := range agg {
				agg[q] = 1 / float32(k)
			}
		}
		pt.partTrans[p] = agg
	}
	pt.trans = make([][]float32, n)
	for v := 0; v < n; v++ {
		if totals[v] > 0 {
			row := counts[v]
			for q := range row {
				row[q] /= totals[v]
			}
			pt.trans[v] = row
			continue
		}
		pt.trans[v] = pt.partTrans[pt.assign[v]]
	}
	// Origin demand prior per partition.
	pt.originW = make([]float64, k)
	if len(trips) == 0 {
		for p := range pt.originW {
			pt.originW[p] = 1 / float64(k)
		}
		return
	}
	for _, t := range trips {
		pt.originW[pt.assign[t.O]]++
	}
	for p := range pt.originW {
		pt.originW[p] /= float64(len(trips))
	}
}
