package partition

import (
	"encoding/json"

	"repro/internal/roadnet"
)

// GeoJSON renders the partitioning as a GeoJSON FeatureCollection — the
// repository's analogue of the paper's Fig. 3(b), which visualises the
// bipartite map partitioning of Chengdu. Vertices are emitted as
// MultiPoint features per partition (with a stable partition id property
// for colouring), landmarks as Point features, and the landmark graph as
// LineString features. Any GeoJSON viewer renders it directly.
func (pt *Partitioning) GeoJSON() ([]byte, error) {
	type geometry struct {
		Type        string      `json:"type"`
		Coordinates interface{} `json:"coordinates"`
	}
	type feature struct {
		Type       string                 `json:"type"`
		Geometry   geometry               `json:"geometry"`
		Properties map[string]interface{} `json:"properties"`
	}
	var features []feature

	coord := func(v roadnet.VertexID) []float64 {
		p := pt.g.Point(v)
		return []float64{p.Lng, p.Lat} // GeoJSON is lng,lat
	}

	// Partition memberships.
	for p := 0; p < pt.NumPartitions(); p++ {
		pts := make([][]float64, 0, len(pt.Vertices(ID(p))))
		for _, v := range pt.Vertices(ID(p)) {
			pts = append(pts, coord(v))
		}
		features = append(features, feature{
			Type:     "Feature",
			Geometry: geometry{Type: "MultiPoint", Coordinates: pts},
			Properties: map[string]interface{}{
				"kind":      "partition",
				"partition": p,
				"size":      len(pts),
			},
		})
	}
	// Landmarks.
	for p := 0; p < pt.NumPartitions(); p++ {
		features = append(features, feature{
			Type:     "Feature",
			Geometry: geometry{Type: "Point", Coordinates: coord(pt.Landmark(ID(p)))},
			Properties: map[string]interface{}{
				"kind":      "landmark",
				"partition": p,
			},
		})
	}
	// Landmark-graph edges (deduplicated: emit p < q only).
	for p := 0; p < pt.NumPartitions(); p++ {
		for _, q := range pt.Adjacent(ID(p)) {
			if q <= ID(p) {
				continue
			}
			features = append(features, feature{
				Type: "Feature",
				Geometry: geometry{
					Type:        "LineString",
					Coordinates: [][]float64{coord(pt.Landmark(ID(p))), coord(pt.Landmark(q))},
				},
				Properties: map[string]interface{}{
					"kind": "landmark-edge",
					"from": p,
					"to":   int(q),
				},
			})
		}
	}
	return json.MarshalIndent(map[string]interface{}{
		"type":     "FeatureCollection",
		"features": features,
	}, "", "  ")
}
