package partition

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// testCity builds a deterministic small city plus snapped historical trips.
func testCity(t testing.TB, rows, cols, tripsPerHour int) (*roadnet.Graph, *roadnet.SpatialIndex, []OD) {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.DefaultCityParams(rows, cols))
	if err != nil {
		t.Fatal(err)
	}
	idx := roadnet.NewSpatialIndex(g, 250)
	min, max := g.Bounds()
	center := geo.Midpoint(min, max)
	extent := geo.Equirect(geo.Point{Lat: min.Lat, Lng: min.Lng}, geo.Point{Lat: min.Lat, Lng: max.Lng})
	ds, err := trace.Generate(trace.Workday, trace.GenParams{
		Center:           center,
		ExtentMeters:     extent,
		TripsPerHourPeak: tripsPerHour,
		UniformFrac:      0.15,
		MinTripMeters:    200,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ods := snapDataset(idx, ds)
	if len(ods) == 0 {
		t.Fatal("no snapped trips")
	}
	return g, idx, ods
}

func snapDataset(idx *roadnet.SpatialIndex, ds *trace.Dataset) []OD {
	pairs := make([]struct{ Origin, Dest geo.Point }, len(ds.Trips))
	for i, tr := range ds.Trips {
		pairs[i] = struct{ Origin, Dest geo.Point }{tr.Origin, tr.Dest}
	}
	return SnapTrips(idx, pairs)
}

func buildBipartite(t testing.TB, kappa int) (*roadnet.Graph, *roadnet.SpatialIndex, *Partitioning) {
	t.Helper()
	g, idx, ods := testCity(t, 14, 14, 150)
	p := DefaultParams(kappa)
	p.KTrans = 5
	pt, err := BuildBipartite(g, ods, p)
	if err != nil {
		t.Fatal(err)
	}
	return g, idx, pt
}

func TestBipartiteCoversAllVertices(t *testing.T) {
	g, _, pt := buildBipartite(t, 12)
	total := 0
	for p := 0; p < pt.NumPartitions(); p++ {
		total += len(pt.Vertices(ID(p)))
	}
	if total != g.NumVertices() {
		t.Fatalf("partitions cover %d of %d vertices", total, g.NumVertices())
	}
}

func TestBipartitePartitionCountNearKappa(t *testing.T) {
	_, _, pt := buildBipartite(t, 12)
	k := pt.NumPartitions()
	if k < 6 || k > 24 {
		t.Fatalf("partition count %d far from kappa 12", k)
	}
}

func TestBipartiteLandmarksInOwnPartition(t *testing.T) {
	_, _, pt := buildBipartite(t, 12)
	for p := 0; p < pt.NumPartitions(); p++ {
		l := pt.Landmark(ID(p))
		if pt.PartitionOf(l) != ID(p) {
			t.Fatalf("landmark of %d is in partition %d", p, pt.PartitionOf(l))
		}
	}
	if len(pt.Landmarks()) != pt.NumPartitions() {
		t.Fatal("Landmarks length mismatch")
	}
}

func TestBipartiteLandmarkCostConsistent(t *testing.T) {
	g, _, pt := buildBipartite(t, 10)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		a := ID(rng.Intn(pt.NumPartitions()))
		b := ID(rng.Intn(pt.NumPartitions()))
		want, _, ok := g.ShortestPath(pt.Landmark(a), pt.Landmark(b))
		got := pt.LandmarkCost(a, b)
		if !ok {
			if !math.IsInf(got, 1) {
				t.Fatalf("LandmarkCost(%d,%d) = %v for unreachable", a, b, got)
			}
			continue
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("LandmarkCost(%d,%d) = %v, want %v", a, b, got, want)
		}
	}
	for p := 0; p < pt.NumPartitions(); p++ {
		if pt.LandmarkCost(ID(p), ID(p)) != 0 {
			t.Fatalf("self landmark cost nonzero for %d", p)
		}
	}
}

func TestBipartiteAdjacencySymmetricAndReal(t *testing.T) {
	g, _, pt := buildBipartite(t, 10)
	adjSet := make([]map[ID]bool, pt.NumPartitions())
	for p := 0; p < pt.NumPartitions(); p++ {
		adjSet[p] = map[ID]bool{}
		for _, q := range pt.Adjacent(ID(p)) {
			if q == ID(p) {
				t.Fatalf("partition %d adjacent to itself", p)
			}
			adjSet[p][q] = true
		}
	}
	for p := range adjSet {
		for q := range adjSet[p] {
			if !adjSet[q][ID(p)] {
				t.Fatalf("adjacency not symmetric: %d->%d", p, q)
			}
		}
	}
	// Every cross-partition road edge must be reflected in adjacency.
	for v := 0; v < g.NumVertices(); v++ {
		pv := pt.PartitionOf(roadnet.VertexID(v))
		for _, a := range g.Out(roadnet.VertexID(v)) {
			pw := pt.PartitionOf(a.To)
			if pv != pw && !adjSet[pv][pw] {
				t.Fatalf("edge (%d,%d) crosses %d|%d but not adjacent", v, a.To, pv, pw)
			}
		}
	}
}

func TestBipartiteTransitionVectorsAreDistributions(t *testing.T) {
	g, _, pt := buildBipartite(t, 10)
	for v := 0; v < g.NumVertices(); v++ {
		var sum float64
		for _, x := range pt.TransitionVector(roadnet.VertexID(v)) {
			if x < 0 {
				t.Fatalf("negative transition prob at vertex %d", v)
			}
			sum += float64(x)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("vertex %d transition sums to %v", v, sum)
		}
	}
	for p := 0; p < pt.NumPartitions(); p++ {
		var sum float64
		for _, x := range pt.PartitionTransitionVector(ID(p)) {
			sum += float64(x)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("partition %d transition sums to %v", p, sum)
		}
	}
}

func TestBipartiteGeographicCoherence(t *testing.T) {
	// Vertices should on average be closer to their own partition centre
	// than to a random other partition centre.
	g, _, pt := buildBipartite(t, 12)
	rng := rand.New(rand.NewSource(3))
	closer, farther := 0, 0
	for i := 0; i < 500; i++ {
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		own := pt.PartitionOf(v)
		other := ID(rng.Intn(pt.NumPartitions()))
		if other == own {
			continue
		}
		dOwn := geo.Equirect(g.Point(v), pt.Center(own))
		dOther := geo.Equirect(g.Point(v), pt.Center(other))
		if dOwn <= dOther {
			closer++
		} else {
			farther++
		}
	}
	if closer <= farther*3 {
		t.Fatalf("weak geographic coherence: %d closer vs %d farther", closer, farther)
	}
}

func TestBipartiteDeterministic(t *testing.T) {
	g, _, ods := testCity(t, 10, 10, 80)
	p := DefaultParams(8)
	p.KTrans = 4
	a, err := BuildBipartite(g, ods, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBipartite(g, ods, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPartitions() != b.NumPartitions() {
		t.Fatalf("nondeterministic partition count: %d vs %d", a.NumPartitions(), b.NumPartitions())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if a.PartitionOf(roadnet.VertexID(v)) != b.PartitionOf(roadnet.VertexID(v)) {
			t.Fatalf("vertex %d assigned differently across runs", v)
		}
	}
}

func TestBipartiteInvalidParams(t *testing.T) {
	g, _, ods := testCity(t, 6, 6, 20)
	bad := []Params{
		{Kappa: 1, KTrans: 1},
		{Kappa: 10, KTrans: 0},
		{Kappa: 10, KTrans: 10},
	}
	for i, p := range bad {
		if _, err := BuildBipartite(g, ods, p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := BuildBipartite(roadnet.NewGraph(0), ods, DefaultParams(5)); err == nil {
		t.Error("expected error for empty graph")
	}
}

func TestBipartiteNoTrips(t *testing.T) {
	// With no historical data the partitioner must still work (pure
	// geographic clustering with uniform transition priors).
	g, _, _ := testCity(t, 8, 8, 10)
	p := DefaultParams(6)
	p.KTrans = 3
	pt, err := BuildBipartite(g, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NumPartitions() < 2 {
		t.Fatalf("degenerate partitioning: %d partitions", pt.NumPartitions())
	}
	v := roadnet.VertexID(0)
	var sum float64
	for _, x := range pt.TransitionVector(v) {
		sum += float64(x)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("uniform prior sums to %v", sum)
	}
}

func TestGridPartitioning(t *testing.T) {
	g, _, ods := testCity(t, 12, 12, 80)
	pt, err := BuildGrid(g, ods, 16)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < pt.NumPartitions(); p++ {
		total += len(pt.Vertices(ID(p)))
	}
	if total != g.NumVertices() {
		t.Fatalf("grid covers %d of %d vertices", total, g.NumVertices())
	}
	if k := pt.NumPartitions(); k < 8 || k > 32 {
		t.Fatalf("grid produced %d partitions for kappa 16", k)
	}
	// Grid partitions must be geographically disjoint rectangles: a
	// vertex's nearest centre should usually be its own.
	rng := rand.New(rand.NewSource(4))
	mismatches := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		own := pt.PartitionOf(v)
		best, bestD := None, math.Inf(1)
		for p := 0; p < pt.NumPartitions(); p++ {
			if d := geo.Equirect(g.Point(v), pt.Center(ID(p))); d < bestD {
				best, bestD = ID(p), d
			}
		}
		if best != own {
			mismatches++
		}
	}
	if mismatches > trials/4 {
		t.Fatalf("grid geographically incoherent: %d/%d mismatches", mismatches, trials)
	}
}

func TestGridErrors(t *testing.T) {
	g, _, _ := testCity(t, 6, 6, 10)
	if _, err := BuildGrid(g, nil, 0); err == nil {
		t.Error("expected error for kappa 0")
	}
	if _, err := BuildGrid(roadnet.NewGraph(0), nil, 4); err == nil {
		t.Error("expected error for empty graph")
	}
}

func TestPartitionsNear(t *testing.T) {
	g, idx, pt := buildBipartite(t, 12)
	center := g.Point(roadnet.VertexID(g.NumVertices() / 2))
	near := pt.PartitionsNear(idx, center, 1000)
	if len(near) == 0 {
		t.Fatal("no partitions near a graph vertex")
	}
	seen := map[ID]bool{}
	for _, p := range near {
		if seen[p] {
			t.Fatalf("duplicate partition %d", p)
		}
		seen[p] = true
	}
	// The vertex's own partition must be included.
	v, _ := idx.NearestVertex(center)
	if !seen[pt.PartitionOf(v)] {
		t.Fatal("own partition missing from PartitionsNear")
	}
	// Tiny radius still returns at least one partition.
	if tiny := pt.PartitionsNear(idx, center, 0.001); len(tiny) == 0 {
		t.Fatal("tiny radius returned nothing")
	}
}

func TestLandmarkVector(t *testing.T) {
	g, _, pt := buildBipartite(t, 10)
	a, b := ID(0), ID(1)
	v := pt.LandmarkVector(a, b)
	if v.Origin() != g.Point(pt.Landmark(a)) || v.Dest() != g.Point(pt.Landmark(b)) {
		t.Fatal("LandmarkVector endpoints wrong")
	}
}

func TestMemoryBytesPositiveAndScales(t *testing.T) {
	_, _, small := buildBipartite(t, 6)
	_, _, large := buildBipartite(t, 18)
	ms, ml := small.MemoryBytes(), large.MemoryBytes()
	if ms <= 0 || ml <= 0 {
		t.Fatalf("non-positive memory: %d, %d", ms, ml)
	}
	if ml <= ms/2 {
		t.Fatalf("more partitions reported much less memory: %d vs %d", ml, ms)
	}
}

func TestSnapTripsDropsDegenerate(t *testing.T) {
	g, idx, _ := testCity(t, 6, 6, 10)
	p0 := g.Point(0)
	pairs := []struct{ Origin, Dest geo.Point }{
		{p0, p0}, // snaps to same vertex -> dropped
		{p0, g.Point(roadnet.VertexID(g.NumVertices() - 1))},
	}
	ods := SnapTrips(idx, pairs)
	if len(ods) != 1 {
		t.Fatalf("SnapTrips kept %d trips, want 1", len(ods))
	}
	if ods[0].O == ods[0].D {
		t.Fatal("degenerate trip survived")
	}
}

func TestBipartiteRespectsMaxRounds(t *testing.T) {
	g, _, ods := testCity(t, 8, 8, 30)
	p := DefaultParams(6)
	p.KTrans = 3
	p.MaxRounds = 1
	start := time.Now()
	if _, err := BuildBipartite(g, ods, p); err != nil {
		t.Fatal(err)
	}
	_ = start // single round should finish quickly; failure mode is a hang
}

func BenchmarkBuildBipartite(b *testing.B) {
	g, _, ods := testCity(b, 20, 20, 200)
	p := DefaultParams(20)
	p.KTrans = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildBipartite(g, ods, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildGrid(b *testing.B) {
	g, _, ods := testCity(b, 20, 20, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGrid(g, ods, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGeoJSONWellFormed(t *testing.T) {
	_, _, pt := buildBipartite(t, 10)
	data, err := pt.GeoJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type string `json:"type"`
			} `json:"geometry"`
			Properties map[string]interface{} `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Type != "FeatureCollection" {
		t.Fatalf("type = %q", doc.Type)
	}
	kinds := map[string]int{}
	for _, f := range doc.Features {
		if f.Type != "Feature" {
			t.Fatalf("feature type %q", f.Type)
		}
		kinds[f.Properties["kind"].(string)]++
	}
	k := pt.NumPartitions()
	if kinds["partition"] != k {
		t.Fatalf("partition features = %d, want %d", kinds["partition"], k)
	}
	if kinds["landmark"] != k {
		t.Fatalf("landmark features = %d, want %d", kinds["landmark"], k)
	}
	if kinds["landmark-edge"] == 0 {
		t.Fatal("no landmark-graph edges emitted")
	}
}
