package partition

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/roadnet"
)

// Oracle is an admissible lower-bound distance estimator over the landmark
// graph (Definitions 7–8): EstimateLB(u, v) never exceeds the true
// shortest-path cost d(u, v), so the dispatch pipeline can discard a
// candidate whose lower-bound detour already violates a deadline without
// consulting the exact router.
//
// The bound is the ALT/landmark triangle inequality restricted to each
// vertex's own partition landmark. With L_u = Landmark(PartitionOf(u)) and
// L_v = Landmark(PartitionOf(v)):
//
//	d(L_u, L_v) <= d(L_u, u) + d(u, v) + d(v, L_v)
//	=> d(u, v) >= LandmarkCost(P(u), P(v)) − fromLM[u] − toLM[v]
//
// where fromLM[u] = d(L_u → u) and toLM[v] = d(v → L_v) are directed
// offsets (forward and reverse Dijkstra from the landmark — on one-way
// grids the two differ). The bound is clamped at 0, so it is admissible by
// construction on any graph, independent of edge-cost geometry.
//
// The offsets live in two flat float64 arrays indexed by vertex — 16 bytes
// per vertex — and the landmark-to-landmark cost table is the one the
// Partitioning already computed, so the oracle adds no per-query
// allocation and its precompute is two Dijkstra trees per partition,
// parallel over partitions.
type Oracle struct {
	pt     *Partitioning
	fromLM []float64 // fromLM[v] = d(landmark(P(v)) → v)
	toLM   []float64 // toLM[v]   = d(v → landmark(P(v)))
}

// NewOracle precomputes the per-vertex landmark offsets of pt. The work is
// one forward and one reverse shortest-path tree per partition, fanned over
// min(parallelism, partitions) workers; parallelism <= 0 uses all CPUs.
// The result is deterministic — each vertex's offsets come from its own
// partition's trees regardless of worker schedule.
func NewOracle(pt *Partitioning, parallelism int) *Oracle {
	n := pt.g.NumVertices()
	o := &Oracle{
		pt:     pt,
		fromLM: make([]float64, n),
		toLM:   make([]float64, n),
	}
	k := len(pt.parts)
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > k {
		parallelism = k
	}
	fill := func(p int) {
		lm := pt.landmark[p]
		fwd := pt.g.SSSP(lm)
		rev := pt.g.ReverseSSSP(lm)
		for _, v := range pt.parts[p] {
			o.fromLM[v] = fwd.Dist[v]
			o.toLM[v] = rev.Dist[v]
		}
	}
	if parallelism <= 1 {
		for p := 0; p < k; p++ {
			fill(p)
		}
		return o
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= k {
					return
				}
				fill(p)
			}
		}()
	}
	wg.Wait()
	return o
}

// EstimateLB returns an admissible lower bound on the shortest-path cost
// from u to v in meters: EstimateLB(u, v) <= d(u, v) always, and
// EstimateLB(u, u) == 0. It returns +Inf only when v is provably
// unreachable from u (the landmarks cannot reach each other while both
// vertices reach theirs). The estimate is two array loads and one table
// lookup — no allocation, safe for concurrent use.
func (o *Oracle) EstimateLB(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	fu := o.fromLM[u]
	tv := o.toLM[v]
	if math.IsInf(fu, 1) || math.IsInf(tv, 1) {
		// The vertex and its own landmark are disconnected; the triangle
		// bound degenerates, so fall back to the trivial lower bound.
		return 0
	}
	lb := o.pt.lmCost[o.pt.assign[u]][o.pt.assign[v]] - fu - tv
	if lb < 0 {
		return 0
	}
	// When lmCost is +Inf with both offsets finite, any u→v path would
	// splice into a landmark-to-landmark path, so d(u,v) is +Inf too and
	// the bound stays exact (and admissible).
	return lb
}

// MemoryBytes estimates the oracle's heap footprint (the offset arrays;
// the landmark cost table is owned by the Partitioning).
func (o *Oracle) MemoryBytes() int64 {
	return int64(len(o.fromLM)+len(o.toLM))*8 + 48
}
