package partition

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
)

// BuildGrid partitions the graph with a uniform geographic grid sized to
// yield approximately kappa non-empty cells. This is the indexing used by
// T-Share and pGreedyDP and the baseline of the Table V map-partitioning
// ablation. Transition vectors, landmarks, and the landmark graph are
// computed exactly as for the bipartite partitioning so the two are
// interchangeable downstream.
func BuildGrid(g *roadnet.Graph, trips []OD, kappa int) (*Partitioning, error) {
	if kappa < 1 {
		return nil, fmt.Errorf("partition: kappa must be >= 1, got %d", kappa)
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("partition: empty graph")
	}
	min, max := g.Bounds()
	latSpan := max.Lat - min.Lat
	lngSpan := max.Lng - min.Lng
	if latSpan <= 0 {
		latSpan = 1e-9
	}
	if lngSpan <= 0 {
		lngSpan = 1e-9
	}
	// Aspect-proportional rows x cols with rows*cols >= kappa; empty cells
	// are dropped by finalize, so the non-empty count lands near kappa for
	// dense networks.
	aspect := latSpan / lngSpan
	rows := int(math.Max(1, math.Round(math.Sqrt(float64(kappa)*aspect))))
	cols := (kappa + rows - 1) / rows
	assign := make([]ID, n)
	for v := 0; v < n; v++ {
		p := g.Point(roadnet.VertexID(v))
		r := int(float64(rows) * (p.Lat - min.Lat) / latSpan)
		c := int(float64(cols) * (p.Lng - min.Lng) / lngSpan)
		if r >= rows {
			r = rows - 1
		}
		if c >= cols {
			c = cols - 1
		}
		assign[v] = ID(r*cols + c)
	}
	return finalize(g, assign, rows*cols, trips)
}
