package partition

import (
	"fmt"

	"repro/internal/kmeans"
	"repro/internal/roadnet"
)

// Params configures the bipartite map partitioner.
type Params struct {
	// Kappa is the target number of spatial partitions (κ). The final
	// count can deviate slightly because step 3 rounds per-transition-
	// cluster partition counts. The paper's default is 150.
	Kappa int
	// KTrans is the number of transition clusters (k_t < κ); the paper
	// sets 20.
	KTrans int
	// MaxRounds caps the outer refinement loop (the paper iterates until
	// the spatial clusters stop changing; real data converges in a few
	// rounds). Zero means the default (8).
	MaxRounds int
	// Seed drives all k-means seeding.
	Seed int64
}

// DefaultParams returns the paper's defaults for the given κ.
func DefaultParams(kappa int) Params {
	return Params{Kappa: kappa, KTrans: 20, Seed: 1}
}

func (p Params) maxRounds() int {
	if p.MaxRounds <= 0 {
		return 8
	}
	return p.MaxRounds
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Kappa < 2:
		return fmt.Errorf("partition: Kappa must be >= 2, got %d", p.Kappa)
	case p.KTrans < 1:
		return fmt.Errorf("partition: KTrans must be >= 1, got %d", p.KTrans)
	case p.KTrans >= p.Kappa:
		return fmt.Errorf("partition: KTrans (%d) must be < Kappa (%d)", p.KTrans, p.Kappa)
	}
	return nil
}

// BuildBipartite runs the paper's bipartite map partitioning (§IV-B1):
//
//  0. k-means on vertex coordinates into κ spatial clusters;
//  1. per-vertex transition-probability vectors over the current spatial
//     clusters, from historical trips;
//  2. k-means on transition vectors into k_t transition clusters;
//  3. within each transition cluster of size n, k-means on coordinates
//     into round(n·κ/N) spatial clusters;
//
// repeating 1–3 until the spatial clusters stabilise or MaxRounds is hit.
func BuildBipartite(g *roadnet.Graph, trips []OD, p Params) (*Partitioning, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("partition: empty graph")
	}
	coords := make([][]float64, n)
	for v := 0; v < n; v++ {
		pt := g.Point(roadnet.VertexID(v))
		// Scale longitude so Euclidean distance in feature space matches
		// ground distance; Chengdu sits near 30.7°N where cos ≈ 0.86.
		coords[v] = []float64{pt.Lat, pt.Lng * 0.86}
	}
	// Step 0: initial spatial clustering.
	res, err := kmeans.Cluster(coords, p.Kappa, kmeans.Options{Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	assign := make([]ID, n)
	for v, c := range res.Assign {
		assign[v] = ID(c)
	}
	numClusters := res.K()

	for round := 0; round < p.maxRounds(); round++ {
		// Step 1: transition-probability vectors over current clusters.
		tvec := transitionVectors(n, numClusters, assign, trips)
		// Step 2: transition clustering.
		tres, err := kmeans.Cluster(tvec, p.KTrans, kmeans.Options{Seed: p.Seed + int64(round) + 1})
		if err != nil {
			return nil, err
		}
		// Step 3: geo-clustering within each transition cluster.
		newAssign := make([]ID, n)
		next := 0
		for tc := 0; tc < tres.K(); tc++ {
			var members []int
			for v, c := range tres.Assign {
				if c == tc {
					members = append(members, v)
				}
			}
			if len(members) == 0 {
				continue
			}
			// round(n·κ/N + 1/2) with the paper's ⌊x+1/2⌋ rounding,
			// clamped to at least one cluster.
			sub := int(float64(len(members))*float64(p.Kappa)/float64(n) + 0.5)
			if sub < 1 {
				sub = 1
			}
			if sub > len(members) {
				sub = len(members)
			}
			pts := make([][]float64, len(members))
			for i, v := range members {
				pts[i] = coords[v]
			}
			gres, err := kmeans.Cluster(pts, sub, kmeans.Options{Seed: p.Seed + int64(round)*1000 + int64(tc)})
			if err != nil {
				return nil, err
			}
			for i, v := range members {
				newAssign[v] = ID(next + gres.Assign[i])
			}
			next += gres.K()
		}
		// Cluster IDs are not stable across rounds, so compare the
		// co-clustering structure rather than raw labels.
		converged := numClusters == next && sameClustering(assign, newAssign)
		copy(assign, newAssign)
		numClusters = next
		if converged {
			break
		}
	}
	return finalize(g, assign, numClusters, trips)
}

// transitionVectors computes B_i for every vertex: the empirical
// distribution over clusters of the destinations of trips originating at
// the vertex; zero vector when the vertex has no outgoing trips.
func transitionVectors(n, k int, assign []ID, trips []OD) [][]float64 {
	vecs := make([][]float64, n)
	for v := range vecs {
		vecs[v] = make([]float64, k)
	}
	totals := make([]float64, n)
	for _, t := range trips {
		vecs[t.O][assign[t.D]]++
		totals[t.O]++
	}
	for v := range vecs {
		if totals[v] == 0 {
			continue
		}
		for c := range vecs[v] {
			vecs[v][c] /= totals[v]
		}
	}
	return vecs
}

// sameClustering reports whether two assignments induce the same grouping
// of vertices, ignoring label permutation.
func sameClustering(a, b []ID) bool {
	fwd := make(map[ID]ID)
	rev := make(map[ID]ID)
	for v := range a {
		if m, ok := fwd[a[v]]; ok {
			if m != b[v] {
				return false
			}
		} else {
			fwd[a[v]] = b[v]
		}
		if m, ok := rev[b[v]]; ok {
			if m != a[v] {
				return false
			}
		} else {
			rev[b[v]] = a[v]
		}
	}
	return true
}
