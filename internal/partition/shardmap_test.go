package partition

import (
	"testing"
)

// shardMapWorld builds one partitioning large enough to shard several
// ways.
func shardMapWorld(t *testing.T) *Partitioning {
	t.Helper()
	g, _, ods := testCity(t, 12, 12, 150)
	pt, err := BuildBipartite(g, ods, Params{Kappa: 12, KTrans: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// TestShardMapCoverage is the ownership property test: for every legal
// shard count, every partition belongs to exactly one shard, shard
// ranges are contiguous, ascending, and jointly cover [0, k), and the
// per-shard vertex counts sum to the whole graph.
func TestShardMapCoverage(t *testing.T) {
	pt := shardMapWorld(t)
	k := pt.NumPartitions()
	totalVerts := 0
	for p := 0; p < k; p++ {
		totalVerts += len(pt.Vertices(ID(p)))
	}
	for _, n := range []int{1, 2, 3, 4, 7, k} {
		sm, err := NewShardMap(pt, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if sm.NumShards() != n {
			t.Fatalf("n=%d: NumShards = %d", n, sm.NumShards())
		}
		next := ID(0)
		vertSum := 0
		for s := 0; s < n; s++ {
			lo, hi := sm.Range(s)
			if lo != next {
				t.Fatalf("n=%d shard %d: range starts at %d, want %d (gap or overlap)", n, s, lo, next)
			}
			if hi < lo {
				t.Fatalf("n=%d shard %d: empty range [%d,%d]", n, s, lo, hi)
			}
			for p := lo; p <= hi; p++ {
				if got := sm.ShardOf(p); got != s {
					t.Fatalf("n=%d: ShardOf(%d) = %d, want %d", n, p, got, s)
				}
			}
			next = hi + 1
			vertSum += sm.VertexCount(s)
		}
		if int(next) != k {
			t.Fatalf("n=%d: shards cover partitions [0,%d), want [0,%d)", n, next, k)
		}
		if vertSum != totalVerts {
			t.Fatalf("n=%d: vertex counts sum to %d, want %d", n, vertSum, totalVerts)
		}
	}
}

// TestShardMapDeterministic checks the map is a pure function of
// (partitioning, shard count): two builds agree on every assignment.
func TestShardMapDeterministic(t *testing.T) {
	pt := shardMapWorld(t)
	a, err := NewShardMap(pt, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardMap(pt, 4)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < pt.NumPartitions(); p++ {
		if a.ShardOf(ID(p)) != b.ShardOf(ID(p)) {
			t.Fatalf("partition %d: %d vs %d across rebuilds", p, a.ShardOf(ID(p)), b.ShardOf(ID(p)))
		}
	}
}

func TestShardMapRejectsBadCounts(t *testing.T) {
	pt := shardMapWorld(t)
	for _, n := range []int{0, -1, pt.NumPartitions() + 1} {
		if _, err := NewShardMap(pt, n); err == nil {
			t.Errorf("n=%d: expected error", n)
		}
	}
}
