package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

// oracleWorld is one (graph, partitioning) pair the metamorphic suite
// checks the oracle against.
type oracleWorld struct {
	name string
	g    *roadnet.Graph
	pt   *Partitioning
}

// oracleWorlds crosses both road generators (grid avenues and radial
// ring-and-spoke) with both partitioners (mobility bipartite and
// geographic grid), so admissibility is exercised on structurally
// different graphs and landmark placements.
func oracleWorlds(t testing.TB) []oracleWorld {
	t.Helper()
	var worlds []oracleWorld

	gridG, _, ods := testCity(t, 12, 12, 150)
	bp, err := BuildBipartite(gridG, ods, Params{Kappa: 10, KTrans: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	worlds = append(worlds, oracleWorld{"grid-bipartite", gridG, bp})
	gp, err := BuildGrid(gridG, ods, 9)
	if err != nil {
		t.Fatal(err)
	}
	worlds = append(worlds, oracleWorld{"grid-gridpart", gridG, gp})

	radG, err := roadnet.GenerateRadialCity(roadnet.DefaultRadialCityParams(8, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize trips on the radial graph from random vertex pairs: the
	// partitioners only need OD weight, not realistic demand.
	rng := rand.New(rand.NewSource(3))
	var radODs []OD
	n := radG.NumVertices()
	for i := 0; i < 300; i++ {
		o := roadnet.VertexID(rng.Intn(n))
		d := roadnet.VertexID(rng.Intn(n))
		if o == d {
			continue
		}
		radODs = append(radODs, OD{O: o, D: d})
	}
	rbp, err := BuildBipartite(radG, radODs, Params{Kappa: 8, KTrans: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	worlds = append(worlds, oracleWorld{"radial-bipartite", radG, rbp})
	rgp, err := BuildGrid(radG, radODs, 9)
	if err != nil {
		t.Fatal(err)
	}
	worlds = append(worlds, oracleWorld{"radial-gridpart", radG, rgp})
	return worlds
}

// TestOracleLowerBoundAdmissible is the metamorphic property at the heart
// of the PR: for thousands of seeded random pairs, the oracle's estimate
// never exceeds the exact Dijkstra distance, and an infinite estimate
// only appears when the pair is truly disconnected. Any violation would
// let the dispatch screen prune a feasible candidate.
func TestOracleLowerBoundAdmissible(t *testing.T) {
	const pairsPerWorld = 1500
	for _, w := range oracleWorlds(t) {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			o := NewOracle(w.pt, 4)
			rng := rand.New(rand.NewSource(42))
			n := w.g.NumVertices()
			// Exact distances via one forward SSSP per sampled source:
			// far cheaper than per-pair Dijkstra and bit-identical.
			sources := make(map[roadnet.VertexID]*roadnet.SSSPResult)
			for i := 0; i < pairsPerWorld; i++ {
				u := roadnet.VertexID(rng.Intn(n))
				v := roadnet.VertexID(rng.Intn(n))
				sp := sources[u]
				if sp == nil {
					sp = w.g.SSSP(u)
					sources[u] = sp
				}
				exact := sp.Dist[v]
				lb := o.EstimateLB(u, v)
				if math.IsInf(lb, 1) {
					if !math.IsInf(exact, 1) {
						t.Fatalf("EstimateLB(%d,%d) = +Inf but exact = %v", u, v, exact)
					}
					continue
				}
				if lb > exact+1e-6 {
					t.Fatalf("EstimateLB(%d,%d) = %v exceeds exact %v (inadmissible)", u, v, lb, exact)
				}
				if lb < 0 {
					t.Fatalf("EstimateLB(%d,%d) = %v negative", u, v, lb)
				}
			}
		})
	}
}

// TestOracleSelfDistanceZero pins EstimateLB(u,u) == 0 for every vertex.
func TestOracleSelfDistanceZero(t *testing.T) {
	for _, w := range oracleWorlds(t) {
		o := NewOracle(w.pt, 0)
		for v := 0; v < w.g.NumVertices(); v++ {
			if got := o.EstimateLB(roadnet.VertexID(v), roadnet.VertexID(v)); got != 0 {
				t.Fatalf("%s: EstimateLB(%d,%d) = %v, want 0", w.name, v, v, got)
			}
		}
	}
}

// TestOracleParallelBuildDeterministic pins that the precompute produces
// bit-identical offset tables at every parallelism level: each partition's
// fill touches a disjoint vertex set, so scheduling cannot matter.
func TestOracleParallelBuildDeterministic(t *testing.T) {
	w := oracleWorlds(t)[0]
	base := NewOracle(w.pt, 1)
	for _, par := range []int{2, 4, 8} {
		o := NewOracle(w.pt, par)
		for v := range base.fromLM {
			fa, fb := base.fromLM[v], o.fromLM[v]
			ta, tb := base.toLM[v], o.toLM[v]
			if fa != fb && !(math.IsInf(fa, 1) && math.IsInf(fb, 1)) {
				t.Fatalf("parallelism %d: fromLM[%d] = %v, serial %v", par, v, fb, fa)
			}
			if ta != tb && !(math.IsInf(ta, 1) && math.IsInf(tb, 1)) {
				t.Fatalf("parallelism %d: toLM[%d] = %v, serial %v", par, v, tb, ta)
			}
		}
	}
}

// TestOracleLandmarkOffsetsExact pins the table contents directly: for the
// landmark's own partition members, fromLM must equal the forward SSSP
// distance and toLM the distance back to the landmark.
func TestOracleLandmarkOffsetsExact(t *testing.T) {
	w := oracleWorlds(t)[0]
	o := NewOracle(w.pt, 0)
	for p := 0; p < w.pt.NumPartitions(); p++ {
		lm := w.pt.Landmark(ID(p))
		fwd := w.g.SSSP(lm)
		for _, v := range w.pt.Vertices(ID(p)) {
			if o.fromLM[v] != fwd.Dist[v] && !(math.IsInf(o.fromLM[v], 1) && math.IsInf(fwd.Dist[v], 1)) {
				t.Fatalf("fromLM[%d] = %v, SSSP %v", v, o.fromLM[v], fwd.Dist[v])
			}
			back, _, ok := w.g.ShortestPath(v, lm)
			if !ok {
				if !math.IsInf(o.toLM[v], 1) {
					t.Fatalf("toLM[%d] = %v for unreachable landmark", v, o.toLM[v])
				}
				continue
			}
			if math.Abs(o.toLM[v]-back) > 1e-9 {
				t.Fatalf("toLM[%d] = %v, ShortestPath back %v", v, o.toLM[v], back)
			}
		}
	}
}

// TestOracleMemoryBytes sanity-checks the reported footprint: two float64
// per vertex plus the struct header.
func TestOracleMemoryBytes(t *testing.T) {
	w := oracleWorlds(t)[0]
	o := NewOracle(w.pt, 0)
	want := int64(16*w.g.NumVertices() + 48)
	if got := o.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}
