// Package payment implements mT-Share's payment model (§IV-D of the
// paper): the ridesharing benefit B = Σ f^s_ri − F (Eq. 5) is split
// between the driver, who keeps (1−β)·B on top of the route fare, and the
// passengers, who share β·B in proportion to their detour rates σ_i
// (Eqs. 6–8). A passenger never pays more than the regular no-sharing
// fare, and passengers with larger detours receive larger compensations.
package payment

import (
	"fmt"
	"math"

	"repro/internal/fleet"
)

// Tariff is a distance-based regular taxi tariff: a base (flag-fall) fare
// covering the first BaseMeters, then PerKm per kilometre beyond.
type Tariff struct {
	BaseFare   float64
	BaseMeters float64
	PerKm      float64
}

// DefaultTariff mirrors the Chengdu taxi tariff of the evaluation period:
// ¥8 flag-fall covering 2 km, then ¥1.9/km.
func DefaultTariff() Tariff {
	return Tariff{BaseFare: 8, BaseMeters: 2000, PerKm: 1.9}
}

// Fare returns the regular taxi fare for travelling the given distance.
func (t Tariff) Fare(meters float64) float64 {
	if meters <= 0 {
		return 0
	}
	if meters <= t.BaseMeters {
		return t.BaseFare
	}
	return t.BaseFare + (meters-t.BaseMeters)/1000*t.PerKm
}

// RideRecord summarises one passenger's trip for settlement.
type RideRecord struct {
	ID fleet.RequestID
	// DirectMeters is the shortest-path length cost(R^s_ri) of the trip.
	DirectMeters float64
	// SharedMeters is the distance the passenger actually rode on the
	// shared route, cost(R_ri) in Eq. 6 (for a completed ride) or the
	// distance ridden so far (Eq. 7).
	SharedMeters float64
	// RemainingDirectMeters is cost(R^s_(d_ri, d_rj)) of Eq. 7: the
	// shortest-path length from the settling passenger's destination to
	// this passenger's destination. Zero for completed rides.
	RemainingDirectMeters float64
	// Completed reports whether the passenger has been delivered; it
	// selects between Eq. 6 and Eq. 7.
	Completed bool
}

// Model carries the payment-model parameters.
type Model struct {
	Tariff Tariff
	// Beta is the passengers' share of the benefit (β, default 0.80).
	Beta float64
	// Eta is the base detour rate η guaranteeing zero-detour passengers
	// still benefit (default 0.01).
	Eta float64
}

// DefaultModel returns the paper's default parameters (β=0.80, η=0.01).
func DefaultModel() Model {
	return Model{Tariff: DefaultTariff(), Beta: 0.80, Eta: 0.01}
}

// Validate reports whether the model parameters are usable.
func (m Model) Validate() error {
	switch {
	case m.Beta < 0 || m.Beta > 1:
		return fmt.Errorf("payment: beta %v outside [0,1]", m.Beta)
	case m.Eta < 0:
		return fmt.Errorf("payment: eta %v negative", m.Eta)
	case m.Tariff.BaseFare < 0 || m.Tariff.PerKm < 0 || m.Tariff.BaseMeters < 0:
		return fmt.Errorf("payment: negative tariff component %+v", m.Tariff)
	}
	return nil
}

// DetourRate computes σ_i (Eq. 6 for completed rides, Eq. 7 otherwise).
// Rides with a non-positive direct distance get the base rate only.
func (m Model) DetourRate(r RideRecord) float64 {
	if r.DirectMeters <= 0 {
		return m.Eta
	}
	traveled := r.SharedMeters
	if !r.Completed {
		traveled += r.RemainingDirectMeters
	}
	detour := (traveled - r.DirectMeters) / r.DirectMeters
	if detour < 0 {
		// A shared route can never beat the shortest path; clamp against
		// numerical noise from snapped endpoints.
		detour = 0
	}
	return m.Eta + detour
}

// Settlement is the outcome of settling one shared-ride group.
type Settlement struct {
	// RouteMeters is the ridesharing route length the group was billed
	// for.
	RouteMeters float64
	// RouteFare is F: the regular fare for RouteMeters.
	RouteFare float64
	// RegularTotal is Σ f^s_ri.
	RegularTotal float64
	// Benefit is B = max(0, RegularTotal − RouteFare).
	Benefit float64
	// DriverIncome is what the driver collects: RouteFare + (1−β)·B.
	DriverIncome float64
	// Fares maps each passenger to the discounted fare of Eq. 8.
	Fares map[fleet.RequestID]float64
	// Savings maps each passenger to f^s_ri − fare_ri.
	Savings map[fleet.RequestID]float64
}

// Settle applies Eqs. 5–8 to a group of rides that shared a route of
// routeMeters. When the group's regular fares don't cover the shared
// route (possible with extreme detours), the benefit clamps to zero:
// passengers pay their regular fares and the driver collects them, so the
// "no passenger pays more / driver never earns less" guarantees hold.
func (m Model) Settle(routeMeters float64, rides []RideRecord) Settlement {
	s := Settlement{
		RouteMeters: routeMeters,
		RouteFare:   m.Tariff.Fare(routeMeters),
		Fares:       make(map[fleet.RequestID]float64, len(rides)),
		Savings:     make(map[fleet.RequestID]float64, len(rides)),
	}
	var sigmaSum float64
	sigmas := make([]float64, len(rides))
	for i, r := range rides {
		s.RegularTotal += m.Tariff.Fare(r.DirectMeters)
		sigmas[i] = m.DetourRate(r)
		sigmaSum += sigmas[i]
	}
	s.Benefit = math.Max(0, s.RegularTotal-s.RouteFare)
	if s.Benefit == 0 || sigmaSum <= 0 {
		for _, r := range rides {
			s.Fares[r.ID] = m.Tariff.Fare(r.DirectMeters)
			s.Savings[r.ID] = 0
		}
		s.DriverIncome = s.RegularTotal
		return s
	}
	for i, r := range rides {
		regular := m.Tariff.Fare(r.DirectMeters)
		discount := m.Beta * s.Benefit * sigmas[i] / sigmaSum
		s.Fares[r.ID] = regular - discount
		s.Savings[r.ID] = discount
	}
	s.DriverIncome = s.RouteFare + (1-m.Beta)*s.Benefit
	return s
}
