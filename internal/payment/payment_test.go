package payment

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTariffFare(t *testing.T) {
	tr := DefaultTariff()
	if f := tr.Fare(0); f != 0 {
		t.Fatalf("Fare(0) = %v", f)
	}
	if f := tr.Fare(-10); f != 0 {
		t.Fatalf("Fare(-10) = %v", f)
	}
	if f := tr.Fare(1500); f != 8 {
		t.Fatalf("Fare within flag-fall = %v", f)
	}
	if f := tr.Fare(2000); f != 8 {
		t.Fatalf("Fare at flag-fall boundary = %v", f)
	}
	if f := tr.Fare(5000); math.Abs(f-(8+3*1.9)) > 1e-9 {
		t.Fatalf("Fare(5km) = %v, want %v", f, 8+3*1.9)
	}
}

func TestTariffFareMonotone(t *testing.T) {
	tr := DefaultTariff()
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return tr.Fare(a) <= tr.Fare(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{Tariff: DefaultTariff(), Beta: -0.1},
		{Tariff: DefaultTariff(), Beta: 1.1},
		{Tariff: DefaultTariff(), Beta: 0.5, Eta: -1},
		{Tariff: Tariff{BaseFare: -1}, Beta: 0.5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDetourRateCompleted(t *testing.T) {
	m := DefaultModel()
	// 20% detour: traveled 6000 over a 5000 direct.
	r := RideRecord{DirectMeters: 5000, SharedMeters: 6000, Completed: true}
	if got := m.DetourRate(r); math.Abs(got-(0.01+0.2)) > 1e-9 {
		t.Fatalf("DetourRate = %v", got)
	}
	// Zero detour: base rate only.
	z := RideRecord{DirectMeters: 5000, SharedMeters: 5000, Completed: true}
	if got := m.DetourRate(z); got != m.Eta {
		t.Fatalf("zero-detour rate = %v", got)
	}
	// Numerical noise below direct clamps to base.
	n := RideRecord{DirectMeters: 5000, SharedMeters: 4999, Completed: true}
	if got := m.DetourRate(n); got != m.Eta {
		t.Fatalf("clamped rate = %v", got)
	}
	// Degenerate direct distance.
	d := RideRecord{DirectMeters: 0, SharedMeters: 100, Completed: true}
	if got := m.DetourRate(d); got != m.Eta {
		t.Fatalf("degenerate rate = %v", got)
	}
}

func TestDetourRateInFlight(t *testing.T) {
	m := DefaultModel()
	// Eq. 7: ridden 3000 so far, 2500 projected remainder, 5000 direct
	// => (5500-5000)/5000 = 0.1 detour.
	r := RideRecord{DirectMeters: 5000, SharedMeters: 3000, RemainingDirectMeters: 2500}
	if got := m.DetourRate(r); math.Abs(got-(0.01+0.1)) > 1e-9 {
		t.Fatalf("in-flight rate = %v", got)
	}
}

func TestSettleTwoPassengerExample(t *testing.T) {
	m := DefaultModel()
	rides := []RideRecord{
		{ID: 1, DirectMeters: 6000, SharedMeters: 7000, Completed: true}, // regular 15.6
		{ID: 2, DirectMeters: 5000, SharedMeters: 5000, Completed: true}, // regular 13.7
	}
	s := m.Settle(9000, rides) // route fare 8 + 7*1.9 = 21.3
	wantRegular := m.Tariff.Fare(6000) + m.Tariff.Fare(5000)
	if math.Abs(s.RegularTotal-wantRegular) > 1e-9 {
		t.Fatalf("RegularTotal = %v", s.RegularTotal)
	}
	wantBenefit := wantRegular - m.Tariff.Fare(9000)
	if math.Abs(s.Benefit-wantBenefit) > 1e-9 {
		t.Fatalf("Benefit = %v, want %v", s.Benefit, wantBenefit)
	}
	// Conservation: fares + driver's benefit share == regular total...
	// driver income = route fare + (1-β)B; passengers pay Σ regular − βB.
	paid := s.Fares[1] + s.Fares[2]
	if math.Abs(paid-(wantRegular-m.Beta*wantBenefit)) > 1e-9 {
		t.Fatalf("passengers pay %v", paid)
	}
	if math.Abs(s.DriverIncome-(m.Tariff.Fare(9000)+0.2*wantBenefit)) > 1e-9 {
		t.Fatalf("DriverIncome = %v", s.DriverIncome)
	}
	// Passenger 1 detoured more, so gets the larger saving.
	if s.Savings[1] <= s.Savings[2] {
		t.Fatalf("savings not proportional to detour: %v vs %v", s.Savings[1], s.Savings[2])
	}
	// No one pays more than regular; everyone gains something (η > 0).
	if s.Fares[1] >= m.Tariff.Fare(6000) || s.Fares[2] >= m.Tariff.Fare(5000) {
		t.Fatal("passenger pays at least the regular fare")
	}
}

func TestSettleDriverEarnsMoreThanRouteFare(t *testing.T) {
	m := DefaultModel()
	rides := []RideRecord{
		{ID: 1, DirectMeters: 6000, SharedMeters: 6600, Completed: true},
		{ID: 2, DirectMeters: 6000, SharedMeters: 6600, Completed: true},
	}
	s := m.Settle(7000, rides)
	if s.DriverIncome <= m.Tariff.Fare(7000) {
		t.Fatalf("driver income %v not above route fare %v", s.DriverIncome, m.Tariff.Fare(7000))
	}
}

func TestSettleNegativeBenefitClamped(t *testing.T) {
	m := DefaultModel()
	// One passenger, massive detour: route fare exceeds the regular fare.
	rides := []RideRecord{{ID: 1, DirectMeters: 3000, SharedMeters: 9000, Completed: true}}
	s := m.Settle(9000, rides)
	if s.Benefit != 0 {
		t.Fatalf("Benefit = %v, want 0", s.Benefit)
	}
	if s.Fares[1] != m.Tariff.Fare(3000) {
		t.Fatalf("fare = %v, want regular %v", s.Fares[1], m.Tariff.Fare(3000))
	}
	if s.Savings[1] != 0 {
		t.Fatalf("savings = %v", s.Savings[1])
	}
	if s.DriverIncome != s.RegularTotal {
		t.Fatalf("driver income %v != regular total %v", s.DriverIncome, s.RegularTotal)
	}
}

func TestSettleEmptyGroup(t *testing.T) {
	s := DefaultModel().Settle(5000, nil)
	if s.RegularTotal != 0 || len(s.Fares) != 0 {
		t.Fatalf("empty settle = %+v", s)
	}
}

func TestSettleSinglePassengerNeverWorseThanRegular(t *testing.T) {
	m := DefaultModel()
	f := func(direct, extra float64) bool {
		direct = 1000 + math.Mod(math.Abs(direct), 20000)
		extra = math.Mod(math.Abs(extra), 5000)
		rides := []RideRecord{{ID: 1, DirectMeters: direct, SharedMeters: direct + extra, Completed: true}}
		s := m.Settle(direct+extra, rides)
		return s.Fares[1] <= m.Tariff.Fare(direct)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSettleConservationProperty(t *testing.T) {
	// Total passenger payments == driver income whenever benefit > 0:
	// Σ fares = Σ regular − βB and driver = F + (1−β)B, and
	// Σ regular = F + B, so both equal F + (1−β)B.
	m := DefaultModel()
	f := func(d1, d2, d3, route float64) bool {
		norm := func(x float64) float64 { return 2000 + math.Mod(math.Abs(x), 10000) }
		rides := []RideRecord{
			{ID: 1, DirectMeters: norm(d1), SharedMeters: norm(d1) * 1.2, Completed: true},
			{ID: 2, DirectMeters: norm(d2), SharedMeters: norm(d2) * 1.1, Completed: true},
			{ID: 3, DirectMeters: norm(d3), SharedMeters: norm(d3), Completed: true},
		}
		s := m.Settle(norm(route), rides)
		var paid float64
		for _, f := range s.Fares {
			paid += f
		}
		return math.Abs(paid-s.DriverIncome) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSettleEtaGivesUniversalBenefit(t *testing.T) {
	// Even a zero-detour passenger gains when sharing produces benefit.
	m := DefaultModel()
	rides := []RideRecord{
		{ID: 1, DirectMeters: 5000, SharedMeters: 5000, Completed: true},
		{ID: 2, DirectMeters: 5000, SharedMeters: 5000, Completed: true},
	}
	s := m.Settle(5000, rides) // identical OD pair sharing perfectly
	if s.Savings[1] <= 0 || s.Savings[2] <= 0 {
		t.Fatalf("zero-detour passengers got no benefit: %+v", s.Savings)
	}
	if math.Abs(s.Savings[1]-s.Savings[2]) > 1e-9 {
		t.Fatal("equal passengers got unequal savings")
	}
}

func BenchmarkSettle(b *testing.B) {
	m := DefaultModel()
	rides := []RideRecord{
		{ID: 1, DirectMeters: 6000, SharedMeters: 7000, Completed: true},
		{ID: 2, DirectMeters: 5000, SharedMeters: 5500, Completed: true},
		{ID: 3, DirectMeters: 4000, SharedMeters: 4800, RemainingDirectMeters: 1000},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Settle(12000, rides)
	}
}
