// Command mtshare-server runs mT-Share as a real-time ridesharing
// dispatch service over HTTP. It builds a synthetic city and its mobility
// indexes at startup, then accepts taxis and ride requests via a JSON API
// while a background loop moves taxis along their planned routes at an
// accelerated clock.
//
// Usage:
//
//	mtshare-server [-addr :8080] [-rows 28] [-cols 28] [-taxis 50] [-speedup 20]
//	               [-queue N] [-queue-retry N] [-shards N] [-border twophase|local]
//	               [-trace-sample N] [-pprof]
//
// Endpoints (versioned under /v1/; the /api/ aliases are deprecated):
//
//	POST /v1/taxis     {"lat":..,"lng":..,"capacity":3}        -> {"id":..}
//	GET  /v1/taxis                                             -> fleet status
//	POST /v1/requests  {"pickup":{...},"dropoff":{...},"rho":1.3} -> assignment
//	GET  /v1/requests?id=N                                     -> request status
//	GET  /v1/queue                                             -> pending-queue stats
//	GET  /v1/shards                                            -> per-shard territory stats
//	GET  /v1/stats                                             -> engine statistics
//	GET  /v1/metrics                                           -> Prometheus text metrics
//	GET  /debug/pprof/                                         -> profiling (with -pprof)
//
// With -trace-sample N, one in N dispatches logs its sampled span tree
// (candidate search, scheduling, leg build) to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	rows := flag.Int("rows", 28, "city grid rows")
	cols := flag.Int("cols", 28, "city grid cols")
	taxis := flag.Int("taxis", 50, "initial fleet size")
	capacity := flag.Int("capacity", 3, "taxi capacity")
	speedup := flag.Float64("speedup", 20, "simulation clock speedup over wall clock")
	seed := flag.Int64("seed", 1, "world seed")
	queueDepth := flag.Int("queue", 0, "pending-queue capacity: park unserved requests and retry until their deadline (0 = reject immediately)")
	queueRetry := flag.Int("queue-retry", 1, "retry the pending queue every N simulation ticks")
	shards := flag.Int("shards", 0, "shard the dispatcher into N territory-owning engines (0 or 1 = single engine)")
	border := flag.String("border", "", "border candidate policy for sharded dispatch: twophase (default) or local")
	traceSample := flag.Int("trace-sample", 0, "log the span tree of one in N dispatches (0 disables)")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	cfg := server.Config{
		CityRows: *rows, CityCols: *cols,
		InitialTaxis: *taxis, Capacity: *capacity,
		Speedup: *speedup, Seed: *seed,
		QueueDepth: *queueDepth, RetryEveryTicks: *queueRetry,
		Sharding: match.ShardingConfig{Shards: *shards, BorderPolicy: *border},
	}
	if *traceSample > 0 {
		cfg.TraceSampleEvery = *traceSample
		cfg.TraceHandler = func(sp *obs.Span) {
			log.Printf("dispatch trace:\n%s", sp.Tree())
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv.Start()
	defer srv.Stop()

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	engine := "single engine"
	if cfg.Sharding.Enabled() {
		engine = fmt.Sprintf("%d shards, %s borders", *shards, cfg.Sharding.Policy())
	}
	log.Printf("mT-Share dispatch service on %s (city %dx%d, %d taxis, %gx clock, %s)",
		*addr, *rows, *cols, *taxis, *speedup, engine)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
