// Command mtshare-server runs mT-Share as a real-time ridesharing
// dispatch service over HTTP. It builds a synthetic city and its mobility
// indexes at startup, then accepts taxis and ride requests via a JSON API
// while a background loop moves taxis along their planned routes at an
// accelerated clock.
//
// Usage:
//
//	mtshare-server [-addr :8080] [-rows 28] [-cols 28] [-taxis 50] [-speedup 20]
//
// Endpoints:
//
//	POST /api/taxis     {"lat":..,"lng":..,"capacity":3}        -> {"id":..}
//	GET  /api/taxis                                             -> fleet status
//	POST /api/requests  {"pickup":{...},"dropoff":{...},"rho":1.3} -> assignment
//	GET  /api/requests?id=N                                     -> request status
//	GET  /api/stats                                             -> engine statistics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	rows := flag.Int("rows", 28, "city grid rows")
	cols := flag.Int("cols", 28, "city grid cols")
	taxis := flag.Int("taxis", 50, "initial fleet size")
	capacity := flag.Int("capacity", 3, "taxi capacity")
	speedup := flag.Float64("speedup", 20, "simulation clock speedup over wall clock")
	seed := flag.Int64("seed", 1, "world seed")
	flag.Parse()

	srv, err := server.New(server.Config{
		CityRows: *rows, CityCols: *cols,
		InitialTaxis: *taxis, Capacity: *capacity,
		Speedup: *speedup, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv.Start()
	defer srv.Stop()

	log.Printf("mT-Share dispatch service on %s (city %dx%d, %d taxis, %gx clock)",
		*addr, *rows, *cols, *taxis, *speedup)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
