// Command mtshare-server runs mT-Share as a real-time ridesharing
// dispatch service over HTTP. It builds a synthetic city and its mobility
// indexes at startup, then accepts taxis and ride requests via a JSON API
// while a background loop moves taxis along their planned routes at an
// accelerated clock.
//
// Usage:
//
//	mtshare-server [-addr :8080] [-rows 28] [-cols 28] [-taxis 50] [-speedup 20]
//	               [-queue N] [-queue-retry N] [-batch-assign]
//	               [-shards N] [-border twophase|local]
//	               [-parallelism N] [-trace-sample N] [-pprof]
//	               [-wal-dir DIR] [-wal-sync-every N] [-wal-sync-interval D]
//	               [-snapshot-every N] [-manual-clock]
//
// Endpoints (versioned under /v1/; the /api/ aliases are deprecated):
//
//	POST /v1/taxis     {"lat":..,"lng":..,"capacity":3}        -> {"id":..}
//	GET  /v1/taxis                                             -> fleet status
//	POST /v1/requests  {"pickup":{...},"dropoff":{...},"rho":1.3} -> assignment
//	GET  /v1/requests?id=N                                     -> request status
//	GET  /v1/queue                                             -> pending-queue stats
//	GET  /v1/shards                                            -> per-shard territory stats
//	GET  /v1/stats                                             -> engine statistics
//	GET  /v1/slo                                               -> per-route latency quantiles + admission state
//	GET  /v1/metrics                                           -> Prometheus text metrics
//	GET  /v1/durability[?state=1]                              -> WAL stats (and full state)
//	POST /v1/advance   {"d_seconds":4}                         -> one tick (with -manual-clock)
//	GET  /debug/pprof/                                         -> profiling (with -pprof)
//
// With -trace-sample N, one in N dispatches logs its sampled span tree
// (candidate search, scheduling, leg build) to stderr.
//
// With -wal-dir the server is crash-safe: every state-changing event is
// appended to a fsynced write-ahead log, a snapshot is written every
// -snapshot-every ticks, and restarting over the same directory recovers
// the exact pre-crash state. MTSHARE_CRASH_AT_EVENT=N (env) SIGKILLs the
// process right after event N commits — the recovery harness's fault
// injection.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	rows := flag.Int("rows", 28, "city grid rows")
	cols := flag.Int("cols", 28, "city grid cols")
	taxis := flag.Int("taxis", 50, "initial fleet size")
	capacity := flag.Int("capacity", 3, "taxi capacity")
	speedup := flag.Float64("speedup", 20, "simulation clock speedup over wall clock")
	seed := flag.Int64("seed", 1, "world seed")
	queueDepth := flag.Int("queue", 0, "pending-queue capacity: park unserved requests and retry until their deadline (0 = reject immediately)")
	queueRetry := flag.Int("queue-retry", 1, "retry the pending queue every N simulation ticks")
	batchAssign := flag.Bool("batch-assign", false, "run queue retry rounds as a global min-cost assignment instead of greedy deadline-order commits")
	shards := flag.Int("shards", 0, "shard the dispatcher into N territory-owning engines (0 or 1 = single engine)")
	border := flag.String("border", "", "border candidate policy for sharded dispatch: twophase (default) or local")
	parallelism := flag.Int("parallelism", 0, "dispatcher worker count per dispatch (0 = default)")
	traceSample := flag.Int("trace-sample", 0, "log the span tree of one in N dispatches (0 disables)")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	walDir := flag.String("wal-dir", "", "write-ahead-log directory: record every event durably and recover state on restart (empty disables)")
	walSyncEvery := flag.Int("wal-sync-every", 64, "fsync the WAL after every N records (group commit; negative = interval/close only)")
	walSyncInterval := flag.Duration("wal-sync-interval", 0, "fsync the WAL at most this long after an unsynced append (0 disables)")
	snapshotEvery := flag.Int("snapshot-every", 0, "write a recovery snapshot every N movement ticks (0 = replay whole WAL on restart)")
	manualClock := flag.Bool("manual-clock", false, "disable the wall-clock ticker; advance time only via POST /v1/advance")
	maxInFlight := flag.Int("max-in-flight", 0, "admission control: max concurrently executing mutating requests; beyond this plus -admission-queue waiters, shed with 429 (0 disables)")
	admissionQueue := flag.Int("admission-queue", 0, "admission control: bounded accept queue in front of -max-in-flight (0 = same as -max-in-flight)")
	flag.Parse()

	cfg := server.Config{
		CityRows: *rows, CityCols: *cols,
		InitialTaxis: *taxis, Capacity: *capacity,
		Speedup: *speedup, Seed: *seed,
		QueueDepth: *queueDepth, RetryEveryTicks: *queueRetry,
		BatchAssign: *batchAssign,
		Sharding:    match.ShardingConfig{Shards: *shards, BorderPolicy: *border},
		Parallelism: *parallelism,
		ManualClock: *manualClock,
		MaxInFlight: *maxInFlight, AdmissionQueue: *admissionQueue,
		Durability: wal.Options{
			Dir:                *walDir,
			SyncEvery:          *walSyncEvery,
			SyncInterval:       *walSyncInterval,
			SnapshotEveryTicks: *snapshotEvery,
		},
	}
	if v := os.Getenv("MTSHARE_CRASH_AT_EVENT"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad MTSHARE_CRASH_AT_EVENT %q: %v\n", v, err)
			os.Exit(2)
		}
		cfg.CrashAtEvent = n
	}
	if *traceSample > 0 {
		cfg.TraceSampleEvery = *traceSample
		cfg.TraceHandler = func(sp *obs.Span) {
			log.Printf("dispatch trace:\n%s", sp.Tree())
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv.Start()
	defer srv.Stop()

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	engine := "single engine"
	if cfg.Sharding.Enabled() {
		engine = fmt.Sprintf("%d shards, %s borders", *shards, cfg.Sharding.Policy())
	}
	log.Printf("mT-Share dispatch service on %s (city %dx%d, %d taxis, %gx clock, %s)",
		*addr, *rows, *cols, *taxis, *speedup, engine)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
