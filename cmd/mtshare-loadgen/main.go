// Command mtshare-loadgen drives a running mtshare-server with an
// open-loop, seeded Poisson request stream and judges the run against
// latency SLOs. Arrivals fire on schedule regardless of how slowly the
// server answers — a melting server sees the full offered rate and its
// queueing delay lands in the client-observed quantiles instead of
// silently stretching the test (no coordinated omission).
//
// Usage:
//
//	mtshare-loadgen [-addr http://localhost:8080] [-rps 50] [-duration 30s]
//	                [-seed 1] [-shape uniform|surge|hotspot|shift] [-rho 0]
//	                [-slo-p99 2s] [-slo-error-frac 0.01] [-slo-shed-frac 0]
//	                [-timeout 10s] [-print-schedule]
//
// The city bounding box is fetched from GET /v1/stats; endpoints are
// sampled inside it per the chosen workload shape. After the run the
// client-side per-route p50/p95/p99 (exact, from raw samples) print
// alongside the server's own GET /v1/slo view, and the process exits 1
// if any SLO is violated — including any 429 missing Retry-After.
//
// -print-schedule writes the schedule as JSONL to stdout without
// sending anything: the determinism surface (same flags, same bytes).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the running mtshare-server")
	rps := flag.Float64("rps", 50, "steady-state offered arrival rate (requests/second)")
	duration := flag.Duration("duration", 30*time.Second, "schedule span")
	seed := flag.Int64("seed", 1, "schedule seed (same seed = byte-identical schedule)")
	shape := flag.String("shape", "uniform", "workload shape: uniform, surge, hotspot, or shift")
	rho := flag.Float64("rho", 0, "flexibility factor per request (0 = server default)")
	sloP99 := flag.Duration("slo-p99", 2*time.Second, "fail if any route's client-observed p99 exceeds this (0 disables)")
	sloErrorFrac := flag.Float64("slo-error-frac", 0.01, "fail if any route's non-2xx/non-429 fraction exceeds this")
	sloShedFrac := flag.Float64("slo-shed-frac", 0, "fail if any route's 429 fraction exceeds this (0 = sheds allowed freely)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
	printSchedule := flag.Bool("print-schedule", false, "emit the schedule as JSONL on stdout and exit without sending")
	flag.Parse()

	cfg := loadgen.Config{
		RPS: *rps, Duration: *duration, Seed: *seed,
		Shape: loadgen.Shape(*shape), Rho: *rho,
	}

	if *printSchedule {
		// A fixed box keeps the printed schedule a pure function of the
		// flags — no server round-trip in the determinism surface.
		cfg.Bounds = loadgen.Bounds{MinLat: 0, MinLng: 0, MaxLat: 1, MaxLng: 1}
		sched, err := loadgen.Schedule(cfg)
		if err != nil {
			fatal(err)
		}
		enc, err := loadgen.EncodeSchedule(sched)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(enc)
		return
	}

	client := &http.Client{Timeout: *timeout}
	bounds, err := loadgen.FetchBounds(client, *addr)
	if err != nil {
		fatal(fmt.Errorf("fetching city bounds: %w", err))
	}
	cfg.Bounds = bounds
	sched, err := loadgen.Schedule(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("open-loop: %d arrivals over %v (%.1f rps offered, shape %s, seed %d)\n",
		len(sched), *duration, *rps, *shape, *seed)

	coll := loadgen.NewCollector()
	if err := loadgen.Run(context.Background(), client, *addr, sched, coll); err != nil {
		fatal(err)
	}

	reports := coll.Report()
	slo := loadgen.SLO{MaxP99: *sloP99, MaxErrorFrac: *sloErrorFrac, MaxShedFrac: *sloShedFrac}
	violations := slo.Check(reports)
	fmt.Print(loadgen.FormatReport(reports, violations))

	if serverSide, err := loadgen.FetchServerSLO(client, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "warning: server-side /v1/slo unavailable: %v\n", err)
	} else {
		fmt.Printf("server /v1/slo: %s\n", serverSide)
	}

	if len(violations) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
