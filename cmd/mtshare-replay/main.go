// Command mtshare-replay re-executes a recorded mtshare run against the
// current engine and reports divergences, or records one of the built-in
// golden scenarios.
//
// Replaying (the default mode) exits 0 when the replay is bit-identical
// to the log and 1 on the first divergence, which it prints with the
// event index and the recorded-versus-replayed values:
//
//	mtshare-replay testdata/golden/peakhour.jsonl.gz
//	mtshare-replay -v run.jsonl          # list every divergence
//
// Recording regenerates a golden log (gzip-compressed when the output
// path ends in .gz), optionally with a deterministic fault plan:
//
//	mtshare-replay -gen uniform -o testdata/golden/uniform.jsonl.gz
//	mtshare-replay -gen peakhour -faults '{"seed":3,"unreachable_every":9}' -o faulty.jsonl
package main

import (
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	mtshare "repro"
)

func main() {
	gen := flag.String("gen", "", "record this scenario instead of replaying (one of: "+strings.Join(mtshare.ScenarioNames, ", ")+")")
	out := flag.String("o", "", "output path for -gen (.gz compresses); required with -gen")
	faultsJSON := flag.String("faults", "", "JSON fault plan for -gen, e.g. '{\"seed\":3,\"unreachable_every\":9,\"cancel_every\":7}'")
	verbose := flag.Bool("v", false, "list every divergence instead of only the first")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mtshare-replay [-v] log.jsonl[.gz]\n")
		fmt.Fprintf(os.Stderr, "       mtshare-replay -gen scenario [-faults json] -o path\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *gen != "" {
		if err := record(*gen, *out, *faultsJSON); err != nil {
			fmt.Fprintln(os.Stderr, "mtshare-replay:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := replayFile(flag.Arg(0), *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "mtshare-replay:", err)
		os.Exit(1)
	}
}

func record(scenario, path, faultsJSON string) error {
	if path == "" {
		return fmt.Errorf("-gen requires -o")
	}
	var faults *mtshare.FaultPlan
	if faultsJSON != "" {
		faults = new(mtshare.FaultPlan)
		if err := json.Unmarshal([]byte(faultsJSON), faults); err != nil {
			return fmt.Errorf("bad -faults: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		if err := mtshare.RecordScenario(scenario, zw, faults); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
	} else if err := mtshare.RecordScenario(scenario, f, faults); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded scenario %q to %s\n", scenario, path)
	return nil
}

func replayFile(path string, verbose bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := mtshare.Replay(f)
	if err != nil {
		return err
	}
	if !rep.Diverged() {
		fmt.Printf("%s: %d events replayed, no divergence\n", path, rep.Events)
		return nil
	}
	if verbose {
		for _, d := range rep.Divergences {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	return fmt.Errorf("%s: %d divergences over %d events; first: %s",
		path, len(rep.Divergences), rep.Events, rep.First())
}
