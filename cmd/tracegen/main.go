// Command tracegen generates a synthetic taxi-trip dataset in the CSV
// schema of the GAIA transactions and writes it to stdout or a file.
//
// Usage:
//
//	tracegen [-day workday|weekend] [-peak 2400] [-seed 1] [-o trips.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/geo"
	"repro/internal/trace"
)

func main() {
	day := flag.String("day", "workday", "day kind: workday or weekend")
	peak := flag.Int("peak", 2400, "trips in the busiest hour")
	seed := flag.Int64("seed", 1, "generator seed")
	lat := flag.Float64("lat", 30.6587, "city center latitude")
	lng := flag.Float64("lng", 104.0648, "city center longitude")
	extent := flag.Float64("extent", 8000, "city extent in meters")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var kind trace.DayKind
	switch *day {
	case "workday":
		kind = trace.Workday
	case "weekend":
		kind = trace.Weekend
	default:
		fmt.Fprintf(os.Stderr, "unknown day %q\n", *day)
		os.Exit(2)
	}
	ds, err := trace.Generate(kind, trace.GenParams{
		Center:           geo.Point{Lat: *lat, Lng: *lng},
		ExtentMeters:     *extent,
		TripsPerHourPeak: *peak,
		UniformFrac:      0.15,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d trips (%s)\n", len(ds.Trips), kind)
}
