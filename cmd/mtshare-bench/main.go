// Command mtshare-bench regenerates the paper's evaluation artefacts
// (every table and figure of §V plus the repository's ablations) on the
// synthetic substrate and prints them as ASCII reports.
//
// Usage:
//
//	mtshare-bench [-scale quick|full] [-experiment all|fig6|tab3|...]
//
// The quick scale finishes the full suite in minutes; the full scale
// approaches the paper's relative densities and takes correspondingly
// longer. See DESIGN.md for the experiment index and EXPERIMENTS.md for
// the recorded paper-versus-measured comparison.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	mtshare "repro"
	"repro/internal/experiments"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/roadnet"
)

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	expID := flag.String("experiment", "all", "experiment id (fig5..fig21, tab3..tab5, ablate-*) or a comma list or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	replicas := flag.Int("replicas", 0, "override placement-seed replicas per setting (0 = scale default)")
	parallelism := flag.Int("parallelism", 0, "dispatch/simulation worker parallelism (0 = all CPUs, 1 = sequential; results are identical at every level)")
	seed := flag.Int64("seed", 0, "override world seed (0 = scale default)")
	outPath := flag.String("o", "", "also write the report to this file")
	geoPath := flag.String("geojson", "", "write the bipartite partitioning as GeoJSON (the paper's Fig. 3b) to this file")
	traceSample := flag.Int("trace-sample", 0, "print the span tree of one in N dispatches to stderr (0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	recordPath := flag.String("record", "", "record a deterministic facade scenario to this replay log and exit (.gz compresses; see -scenario)")
	scenario := flag.String("scenario", "peakhour", "scenario for -record: "+strings.Join(mtshare.ScenarioNames, " or "))
	replayPath := flag.String("replay", "", "replay a recorded log against the current engine and exit (nonzero on divergence)")
	flag.Parse()

	if *recordPath != "" {
		if err := recordScenario(*scenario, *recordPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *replayPath != "" {
		if err := replayLog(*replayPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleName)
		os.Exit(2)
	}

	if *parallelism < 0 {
		fmt.Fprintln(os.Stderr, "-parallelism must be >= 0")
		os.Exit(2)
	}
	if *replicas > 0 {
		scale.Replicas = *replicas
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	fmt.Fprintf(out, "building %s-scale world (replicas=%d, seed=%d)...\n", scale.Name, scale.Replicas, scale.Seed)
	t0 := time.Now()
	lab, err := experiments.NewLab(scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	lab.Parallelism = *parallelism
	if *traceSample > 0 {
		lab.TraceEvery = *traceSample
		lab.TraceHandler = func(sp *obs.Span) {
			fmt.Fprintf(os.Stderr, "dispatch trace:\n%s", sp.Tree())
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	fmt.Fprintf(out, "world ready in %v: %d vertices, %d edges, peak hour %d trips\n\n",
		time.Since(t0).Round(time.Millisecond),
		lab.World.G.NumVertices(), lab.World.G.NumEdges(),
		len(lab.World.Workday.Between(8*time.Hour, 9*time.Hour)))

	if *geoPath != "" {
		pt, err := lab.World.Partitioning("bipartite", scale.Kappa)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := pt.GeoJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*geoPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "wrote Fig. 3(b) partitioning GeoJSON (%d partitions) to %s\n\n",
			pt.NumPartitions(), *geoPath)
	}

	var todo []experiments.Experiment
	if *expID == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}
	for _, e := range todo {
		t0 := time.Now()
		pipe0, rt0 := lab.PipelineStats()
		res, err := e.Run(lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprint(out, res.Render())
		fmt.Fprintf(out, "(%s regenerated in %v)\n", e.ID, time.Since(t0).Round(time.Millisecond))
		printPipelineDelta(out, lab, pipe0, rt0)
		fmt.Fprintln(out)
	}
}

// recordScenario records one of the facade's built-in deterministic
// scenarios as a replay log (the same machinery cmd/mtshare-replay -gen
// uses, surfaced here so one binary covers bench-and-record workflows).
func recordScenario(scenario, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	var zw *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
	}
	if err := mtshare.RecordScenario(scenario, w, nil); err != nil {
		return err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded scenario %q to %s\n", scenario, path)
	return nil
}

// replayLog re-executes a recorded log and reports the first divergence.
func replayLog(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := mtshare.Replay(f)
	if err != nil {
		return err
	}
	if rep.Diverged() {
		return fmt.Errorf("%s: %d divergences over %d events; first: %s",
			path, len(rep.Divergences), rep.Events, rep.First())
	}
	fmt.Printf("%s: %d events replayed, no divergence\n", path, rep.Events)
	return nil
}

// printPipelineDelta reports what the dispatch pipeline and router cache
// did during one experiment (fresh simulations only: memoised scenario
// recalls contribute nothing).
func printPipelineDelta(out io.Writer, lab *experiments.Lab, pipe0 match.EngineStats, rt0 roadnet.RouterStats) {
	pipe1, rt1 := lab.PipelineStats()
	dispatches := pipe1.Dispatches - pipe0.Dispatches
	if dispatches == 0 {
		return
	}
	secs := func(a, b int64) float64 { return float64(a-b) / 1e9 }
	fmt.Fprintf(out, "  dispatch stages: candidate search %.2fs, scheduling %.2fs, leg build %.2fs over %d dispatches\n",
		secs(pipe1.CandidateSearchNanos, pipe0.CandidateSearchNanos),
		secs(pipe1.SchedulingNanos, pipe0.SchedulingNanos),
		secs(pipe1.LegBuildNanos, pipe0.LegBuildNanos), dispatches)
	hits, misses := rt1.Hits-rt0.Hits, rt1.Misses-rt0.Misses
	if q := hits + misses; q > 0 {
		fmt.Fprintf(out, "  router cache: %.1f%% hit rate (%d queries), %d SSSP runs, %d singleflight-deduped\n",
			100*float64(hits)/float64(q), q, misses, rt1.SingleflightDeduped-rt0.SingleflightDeduped)
	}
}
