package mtshare

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/replay"
	"repro/internal/wal"
)

// durableBaseOptions is the small world every durability test runs in.
func durableBaseOptions(shards, parallelism int) Options {
	return Options{
		SyntheticCityRows: 8,
		SyntheticCityCols: 8,
		Seed:              5,
		QueueDepth:        8,
		RetryEveryTicks:   1,
		Parallelism:       parallelism,
		Sharding:          ShardingOptions{Shards: shards},
	}
}

// opResult is one driven operation's externally visible outcome, in a
// JSON-comparable shape.
type opResult struct {
	Kind    string       `json:"kind"`
	Err     string       `json:"err,omitempty"`
	Taxi    int64        `json:"taxi,omitempty"`
	Out     Assignment   `json:"out,omitempty"`
	Rides   []RideEvent  `json:"rides,omitempty"`
	Queue   QueueOutcome `json:"queue,omitempty"`
	ServeBy int64        `json:"serve_by,omitempty"`
}

// driveOp executes deterministic operation k against the system. The op
// schedule is a pure function of k, so any two systems driven over the
// same index range see exactly the same inputs.
func driveOp(s *System, k int) opResult {
	rng := rand.New(rand.NewSource(int64(1000 + k)))
	min, max := s.Bounds()
	pt := func() Point {
		return Point{
			Lat: min.Lat + rng.Float64()*(max.Lat-min.Lat),
			Lng: min.Lng + rng.Float64()*(max.Lng-min.Lng),
		}
	}
	ctx := context.Background()
	switch {
	case k < 6:
		id, err := s.AddTaxi(pt(), 3)
		return opResult{Kind: "add_taxi", Taxi: int64(id), Err: errCode(err)}
	case k%5 == 4:
		rides, qo := s.AdvanceWithQueue(30 * time.Second)
		return opResult{Kind: "tick", Rides: rides, Queue: qo}
	case k%13 == 7:
		served, err := s.ReportStreetHail(ctx, TaxiID(1+rng.Intn(6)), pt(), pt(), 1.5)
		return opResult{Kind: "hail", ServeBy: int64(served), Err: errCode(err)}
	default:
		a, err := s.SubmitRequest(ctx, pt(), pt(), 1.3)
		return opResult{Kind: "request", Out: a, Err: errCode(err)}
	}
}

func drive(s *System, from, to int) []opResult {
	out := make([]opResult, 0, to-from)
	for k := from; k < to; k++ {
		out = append(out, driveOp(s, k))
	}
	return out
}

func asJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDurableCrashRecoveryMatrix is the in-process crash matrix: for
// shard counts 1 and 2, dispatch parallelism 1 and 2, and three
// seeded crash points each, a WAL-enabled system is abandoned mid-run
// (never Closed — the in-process equivalent of kill -9, with SyncEvery=1
// so every committed record reached disk), reopened, and the recovered
// state compared byte for byte against the state the abandoned system
// still holds. The recovered system is then driven onward alongside an
// identically configured never-crashed control, and their event streams
// and final states must also match exactly.
func TestDurableCrashRecoveryMatrix(t *testing.T) {
	const totalOps = 36
	for _, shards := range []int{0, 2} {
		for _, parallelism := range []int{1, 2} {
			crashPoints := replay.CrashPoints(int64(shards*10+parallelism), 3, totalOps-4)
			if len(crashPoints) != 3 {
				t.Fatalf("want 3 crash points, got %v", crashPoints)
			}
			for _, cp := range crashPoints {
				name := map[bool]string{true: "sharded"}[shards > 1]
				t.Run(asJSON(t, map[string]any{"shards": shards, "par": parallelism, "crash": cp}), func(t *testing.T) {
					_ = name
					opts := durableBaseOptions(shards, parallelism)
					opts.Durability = DurabilityOptions{
						Dir:                t.TempDir(),
						SyncEvery:          1,
						SnapshotEveryTicks: 3,
					}
					crashed, err := New(opts)
					if err != nil {
						t.Fatal(err)
					}
					prefix := drive(crashed, 0, int(cp))

					// The control never crashes and never records.
					ctl, err := New(durableBaseOptions(shards, parallelism))
					if err != nil {
						t.Fatal(err)
					}
					if got, want := asJSON(t, drive(ctl, 0, int(cp))), asJSON(t, prefix); got != want {
						t.Fatalf("control prefix diverged before any crash:\n got %s\nwant %s", got, want)
					}

					// State of the "dead" process, captured for the diff
					// before the recovering process touches the files.
					want := crashed.captureSnapshot()

					recovered, err := New(opts)
					if err != nil {
						t.Fatalf("recovery: %v", err)
					}
					defer recovered.Close()
					got := recovered.captureSnapshot()
					if g, w := asJSON(t, got), asJSON(t, want); g != w {
						t.Fatalf("recovered state differs from crashed state:\n got %s\nwant %s", g, w)
					}
					if g, w := asJSON(t, recovered.Stats()), asJSON(t, crashed.Stats()); g != w {
						t.Fatalf("Stats differ: got %s want %s", g, w)
					}
					if g, w := asJSON(t, recovered.ShardStats()), asJSON(t, crashed.ShardStats()); g != w {
						t.Fatalf("ShardStats differ: got %s want %s", g, w)
					}
					if g, w := asJSON(t, recovered.QueueStats()), asJSON(t, crashed.QueueStats()); g != w {
						t.Fatalf("QueueStats differ: got %s want %s", g, w)
					}

					// The recovered system and the control must now produce
					// identical event streams for the same suffix.
					outRec := drive(recovered, int(cp), totalOps)
					outCtl := drive(ctl, int(cp), totalOps)
					if g, w := asJSON(t, outRec), asJSON(t, outCtl); g != w {
						t.Fatalf("post-recovery event stream diverged:\n got %s\nwant %s", g, w)
					}
					finalRec := recovered.captureSnapshot()
					finalCtl := ctl.captureSnapshot()
					finalRec.Header = nil // the control has no WAL header
					if g, w := asJSON(t, finalRec), asJSON(t, finalCtl); g != w {
						t.Fatalf("final state diverged:\n got %s\nwant %s", g, w)
					}
				})
			}
		}
	}
}

// TestDurableFreshAndSealedReopen covers the non-crash paths: a cleanly
// closed WAL reopens with the counters seal verified, and an empty
// directory starts a fresh log.
func TestDurableFreshAndSealedReopen(t *testing.T) {
	opts := durableBaseOptions(0, 1)
	opts.Durability = DurabilityOptions{Dir: t.TempDir(), SyncEvery: 1}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := s.DurabilityStats()
	if !ok {
		t.Fatal("durability stats must be available")
	}
	if st.Records != 1 {
		t.Fatalf("fresh WAL has %d records, want 1 (header)", st.Records)
	}
	drive(s, 0, 12)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := New(opts)
	if err != nil {
		t.Fatalf("reopen after clean close: %v", err)
	}
	if got := reopened.eventIndex; got != 12 {
		t.Fatalf("reopened at event %d, want 12", got)
	}
	// The reopened system resumes the log.
	drive(reopened, 12, 16)
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableHeaderMismatch proves recovery refuses a WAL recorded under
// different options.
func TestDurableHeaderMismatch(t *testing.T) {
	dir := t.TempDir()
	opts := durableBaseOptions(0, 1)
	opts.Durability = DurabilityOptions{Dir: dir, SyncEvery: 1}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	drive(s, 0, 8)
	s.Close()

	other := opts
	other.Seed = 6
	if _, err := New(other); err == nil {
		t.Fatal("recovery under a different seed must fail")
	}
}

// TestDurableRecoveryTailSpeed is the acceptance bound: recovering a
// 10k-event WAL tail (no snapshot — the worst case, a full genesis
// replay) must finish in under five seconds.
func TestDurableRecoveryTailSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-event recovery timing")
	}
	opts := durableBaseOptions(0, 0)
	opts.QueueDepth = 0
	opts.RetryEveryTicks = 0
	opts.Durability = DurabilityOptions{Dir: t.TempDir(), SyncEvery: 64}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.AddTaxi(Point{Lat: 0.01, Lng: 0.01}, 3); err != nil {
			t.Fatal(err)
		}
	}
	min, max := s.Bounds()
	mid := Point{Lat: (min.Lat + max.Lat) / 2, Lng: (min.Lng + max.Lng) / 2}
	ctx := context.Background()
	for i := 0; i < 10000; i++ {
		if i%50 == 25 {
			s.SubmitRequest(ctx, min, mid, 1.3)
		} else {
			s.Advance(2 * time.Second)
		}
	}
	s.wlog.Sync() // the abandoned process happened to have group-committed everything
	wantEvents := s.eventIndex

	start := time.Now()
	recovered, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	defer recovered.Close()
	if recovered.eventIndex != wantEvents {
		t.Fatalf("recovered %d events, want %d", recovered.eventIndex, wantEvents)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("10k-event recovery took %v, budget 5s", elapsed)
	}
	t.Logf("recovered %d events in %v", wantEvents, elapsed)
}

// TestDurableSnapshotPrunesReplay proves snapshots actually shorten
// recovery: with a snapshot cadence, reopening replays only the tail.
func TestDurableSnapshotPrunesReplay(t *testing.T) {
	opts := durableBaseOptions(0, 1)
	opts.Durability = DurabilityOptions{Dir: t.TempDir(), SyncEvery: 1, SnapshotEveryTicks: 2}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	drive(s, 0, 30)
	s.snapWG.Wait() // background snapshot writes
	st, _ := s.DurabilityStats()
	if st.Snapshots == 0 {
		t.Fatal("no snapshot written despite cadence")
	}
	if st.LastSnapshotEvents == 0 {
		t.Fatal("snapshot watermark not recorded")
	}
	want := s.captureSnapshot()

	recovered, err := New(opts)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer recovered.Close()
	got := recovered.captureSnapshot()
	if g, w := asJSON(t, got), asJSON(t, want); g != w {
		t.Fatalf("snapshot-based recovery differs:\n got %s\nwant %s", g, w)
	}
}

// TestWALDispatchOverhead bounds the WAL's cost on the live dispatch
// path: the same workload with a SyncEvery=64 WAL must stay within the
// benchgate budget (30% geomean) of the WAL-less run, with a small
// absolute allowance for fsync latency on slow filesystems.
func TestWALDispatchOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	run := func(withWAL bool) time.Duration {
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 3; rep++ {
			opts := durableBaseOptions(0, 0)
			if withWAL {
				opts.Durability = DurabilityOptions{Dir: t.TempDir(), SyncEvery: 64, SnapshotEveryTicks: 64}
			}
			s, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			drive(s, 0, 200)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	base := run(false)
	walled := run(true)
	budget := base*13/10 + 250*time.Millisecond
	if walled > budget {
		t.Fatalf("WAL run %v exceeds budget %v (base %v)", walled, budget, base)
	}
	t.Logf("base %v, with WAL %v", base, walled)
}

var _ = wal.Options{} // keep the import for the DurabilityOptions alias

// TestDurableRecoveryIgnoresSnapshotAheadOfWAL plants a CRC-valid
// snapshot whose watermark exceeds the log's record count — the state a
// crashed process snapshotted after events its unsynced WAL tail lost —
// and requires recovery to skip it and genesis-replay instead of
// resurrecting phantom state.
func TestDurableRecoveryIgnoresSnapshotAheadOfWAL(t *testing.T) {
	dir := t.TempDir()
	opts := durableBaseOptions(0, 1)
	opts.Durability = DurabilityOptions{Dir: dir, SyncEvery: 1}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	drive(s, 0, 12)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	l, err := wal.Open(wal.Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(500, []byte("phantom state")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	recovered, err := New(opts)
	if err != nil {
		t.Fatalf("recovery must skip the snapshot ahead of the WAL: %v", err)
	}
	defer recovered.Close()
	if recovered.eventIndex != 12 {
		t.Fatalf("recovered at event %d, want 12", recovered.eventIndex)
	}
}

// TestDurableWALFailureStopsAcks proves a dead WAL surfaces on the
// facade's serve path: the call whose event failed to persist returns
// the durability error instead of a clean ack, and the system refuses
// everything after with ErrShutdown.
func TestDurableWALFailureStopsAcks(t *testing.T) {
	opts := durableBaseOptions(0, 1)
	opts.Durability = DurabilityOptions{Dir: t.TempDir(), SyncEvery: 1}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	min, max := s.Bounds()
	mid := Point{Lat: (min.Lat + max.Lat) / 2, Lng: (min.Lng + max.Lng) / 2}
	if _, err := s.AddTaxi(mid, 3); err != nil {
		t.Fatalf("healthy AddTaxi: %v", err)
	}

	// Kill the log out from under the system: the next append fails and
	// the error sticks in the encoder.
	s.wlog.Close()

	if _, err := s.AddTaxi(mid, 3); err == nil {
		t.Fatal("AddTaxi acknowledged an event the WAL never persisted")
	}
	if _, err := s.SubmitRequest(context.Background(), min, mid, 1.3); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-failure SubmitRequest error = %v, want ErrShutdown", err)
	}
}
