package mtshare

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§V) at the quick experiment scale. One benchmark maps to one
// artefact; run with -v to see the regenerated rows/series:
//
//	go test -bench=. -benchmem -v
//
// The shared Lab memoises scenario runs, so benchmarks that share sweeps
// (e.g. Figs. 6-9 all use the peak fleet sweep) pay for them once.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/experiments"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
	benchLabErr  error
)

func sharedLab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab, benchLabErr = experiments.NewLab(experiments.QuickScale())
	})
	if benchLabErr != nil {
		b.Fatal(benchLabErr)
	}
	return benchLab
}

func benchExperiment(b *testing.B, id string) {
	lab := sharedLab(b)
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var rendered string
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(lab)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 && len(res.Rows) == 0 {
			b.Fatalf("%s produced no data", id)
		}
		rendered = res.Render()
	}
	if testing.Verbose() {
		b.Log("\n" + rendered)
	}
}

func BenchmarkFig5DatasetStats(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6ServedPeak(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7ResponsePeak(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkTable3Candidates(b *testing.B)        { benchExperiment(b, "tab3") }
func BenchmarkFig8DetourPeak(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9WaitingPeak(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10ServedNonpeak(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11ResponseNonpeak(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12DetourNonpeak(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13WaitingNonpeak(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkTable4Memory(b *testing.B)            { benchExperiment(b, "tab4") }
func BenchmarkFig14aPartitions(b *testing.B)        { benchExperiment(b, "fig14a") }
func BenchmarkFig14bCapacity(b *testing.B)          { benchExperiment(b, "fig14b") }
func BenchmarkTable5Partitioning(b *testing.B)      { benchExperiment(b, "tab5") }
func BenchmarkFig15SearchRange(b *testing.B)        { benchExperiment(b, "fig15") }
func BenchmarkFig16RoutingModes(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig17RhoWaiting(b *testing.B)         { benchExperiment(b, "fig17") }
func BenchmarkFig18RhoDetour(b *testing.B)          { benchExperiment(b, "fig18") }
func BenchmarkFig19Payment(b *testing.B)            { benchExperiment(b, "fig19") }
func BenchmarkFig20Lambda(b *testing.B)             { benchExperiment(b, "fig20") }
func BenchmarkFig21Scalability(b *testing.B)        { benchExperiment(b, "fig21") }
func BenchmarkAblationPartitionFilter(b *testing.B) { benchExperiment(b, "ablate-filter") }
func BenchmarkAblationReorder(b *testing.B)         { benchExperiment(b, "ablate-reorder") }
func BenchmarkAblationProbTradeoff(b *testing.B)    { benchExperiment(b, "ablate-probtradeoff") }
func BenchmarkVerifyClaims(b *testing.B)            { benchExperiment(b, "verify") }

// BenchmarkDispatchLatency measures the per-request dispatch latency of
// the public API on a warm system — the per-call cost behind the paper's
// response-time figures.
func BenchmarkDispatchLatency(b *testing.B) {
	sys, err := New(Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	min, max := sys.Bounds()
	pt := func(fLat, fLng float64) Point {
		return Point{Lat: min.Lat + fLat*(max.Lat-min.Lat), Lng: min.Lng + fLng*(max.Lng-min.Lng)}
	}
	for i := 0; i < 40; i++ {
		f := 0.1 + 0.8*float64(i)/40
		if _, err := sys.AddTaxi(pt(f, 1-f), 3); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sys.SubmitRequest(ctx, pt(0.3, 0.3), pt(0.8, 0.8), 1.4)
		if err != nil && !errors.Is(err, ErrNoTaxiAvailable) {
			b.Fatal(err)
		}
		b.StopTimer()
		sys.Advance(30) // drain a little so the fleet doesn't saturate
		b.StartTimer()
	}
}
