package mtshare

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func newSystem(t testing.TB, probabilistic bool) *System {
	t.Helper()
	s, err := New(Options{Probabilistic: probabilistic, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// at returns a point at fractional coordinates of the system's bounds.
func at(s *System, fLat, fLng float64) Point {
	min, max := s.Bounds()
	return Point{
		Lat: min.Lat + fLat*(max.Lat-min.Lat),
		Lng: min.Lng + fLng*(max.Lng-min.Lng),
	}
}

func TestSystemDefaults(t *testing.T) {
	s := newSystem(t, false)
	st := s.Stats()
	if st.RoadVertices < 100 || st.RoadEdges < st.RoadVertices {
		t.Fatalf("world too small: %+v", st)
	}
	if st.Partitions < 2 {
		t.Fatalf("partitions = %d", st.Partitions)
	}
	if s.Now() != 0 {
		t.Fatal("clock not at zero")
	}
}

func TestSubmitAndRide(t *testing.T) {
	s := newSystem(t, false)
	id, err := s.AddTaxi(at(s, 0.5, 0.5), 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.SubmitRequest(context.Background(), at(s, 0.52, 0.52), at(s, 0.85, 0.85), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Taxi != id {
		t.Fatalf("assigned taxi %d, want %d", a.Taxi, id)
	}
	if a.PickupETA < 0 || a.DropoffETA <= a.PickupETA {
		t.Fatalf("ETAs: pickup %v dropoff %v", a.PickupETA, a.DropoffETA)
	}
	if a.FareEstimate <= 0 {
		t.Fatal("no fare estimate")
	}
	// Ride to completion.
	var picked, delivered bool
	for i := 0; i < 2000 && !delivered; i++ {
		for _, ev := range s.Advance(5 * time.Second) {
			if ev.Request != a.Request {
				continue
			}
			if ev.Pickup {
				picked = true
			} else {
				delivered = true
				if ev.At <= 0 {
					t.Fatal("delivery with no timestamp")
				}
			}
		}
	}
	if !picked || !delivered {
		t.Fatalf("ride incomplete: picked=%v delivered=%v", picked, delivered)
	}
	ts, err := s.Taxi(id)
	if err != nil {
		t.Fatal(err)
	}
	if ts.OccupiedSeats != 0 || ts.PendingEvents != 0 {
		t.Fatalf("taxi not idle after delivery: %+v", ts)
	}
}

func TestRideSharingTwoPassengers(t *testing.T) {
	s := newSystem(t, false)
	if _, err := s.AddTaxi(at(s, 0.2, 0.2), 3); err != nil {
		t.Fatal(err)
	}
	a1, err := s.SubmitRequest(context.Background(), at(s, 0.2, 0.2), at(s, 0.85, 0.85), 1.6)
	if err != nil {
		t.Fatalf("first request: %v", err)
	}
	a2, err := s.SubmitRequest(context.Background(), at(s, 0.3, 0.3), at(s, 0.75, 0.75), 1.8)
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	if a1.Taxi != a2.Taxi {
		t.Fatalf("no sharing: taxis %d and %d", a1.Taxi, a2.Taxi)
	}
	ts, _ := s.Taxi(a1.Taxi)
	if ts.PendingEvents != 4 {
		t.Fatalf("pending events = %d, want 4", ts.PendingEvents)
	}
}

func TestNoTaxiMeansUnserved(t *testing.T) {
	s := newSystem(t, false)
	a, err := s.SubmitRequest(context.Background(), at(s, 0.4, 0.4), at(s, 0.8, 0.8), 1.3)
	if !errors.Is(err, ErrNoTaxiAvailable) {
		t.Fatalf("err = %v, want ErrNoTaxiAvailable", err)
	}
	if a.CandidateTaxis != 0 {
		t.Fatalf("candidates = %d with no fleet", a.CandidateTaxis)
	}
}

func TestStreetHail(t *testing.T) {
	s := newSystem(t, true)
	id, err := s.AddTaxi(at(s, 0.4, 0.4), 3)
	if err != nil {
		t.Fatal(err)
	}
	serving, err := s.ReportStreetHail(context.Background(), id, at(s, 0.41, 0.41), at(s, 0.8, 0.8), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if serving != id {
		t.Fatalf("street hail served by taxi %d, want %d", serving, id)
	}
	if _, err := s.ReportStreetHail(context.Background(), 999, at(s, 0.4, 0.4), at(s, 0.8, 0.8), 1.5); !errors.Is(err, ErrUnknownTaxi) {
		t.Fatalf("unknown taxi: err = %v, want ErrUnknownTaxi", err)
	}
}

func TestRequestValidation(t *testing.T) {
	s := newSystem(t, false)
	p := at(s, 0.5, 0.5)
	if _, err := s.SubmitRequest(context.Background(), p, p, 1.3); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("degenerate request: err = %v, want ErrInvalidRequest", err)
	}
	if _, err := s.SubmitRequest(context.Background(), p, at(s, 0.8, 0.8), 0.9); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("flexibility 0.9: err = %v, want ErrInvalidRequest", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []Options{
		{SyntheticCityRows: -1},
		{SyntheticCityRows: 1, SyntheticCityCols: 1},
		{Partitions: -4},
		{SpeedKmh: -15},
		{SearchRangeMeters: -1},
		{MaxDirectionDiffDegrees: 270},
		{TraceSampleEvery: -1},
	}
	for _, opts := range cases {
		if err := opts.Validate(); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("Validate(%+v) = %v, want ErrInvalidOptions", opts, err)
		}
		if _, err := New(opts); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("New(%+v) = %v, want ErrInvalidOptions", opts, err)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("DefaultOptions invalid: %v", err)
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero Options invalid: %v", err)
	}
}

func TestCloseShutsDown(t *testing.T) {
	s := newSystem(t, false)
	if _, err := s.AddTaxi(at(s, 0.5, 0.5), 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
	if _, err := s.SubmitRequest(context.Background(), at(s, 0.5, 0.5), at(s, 0.8, 0.8), 1.3); !errors.Is(err, ErrShutdown) {
		t.Fatalf("SubmitRequest after Close: err = %v, want ErrShutdown", err)
	}
	if _, err := s.ReportStreetHail(context.Background(), 1, at(s, 0.5, 0.5), at(s, 0.8, 0.8), 1.3); !errors.Is(err, ErrShutdown) {
		t.Fatalf("ReportStreetHail after Close: err = %v, want ErrShutdown", err)
	}
	if _, err := s.AddTaxi(at(s, 0.4, 0.4), 3); !errors.Is(err, ErrShutdown) {
		t.Fatalf("AddTaxi after Close: err = %v, want ErrShutdown", err)
	}
}

func TestMetricsSurface(t *testing.T) {
	s := newSystem(t, false)
	if _, err := s.AddTaxi(at(s, 0.5, 0.5), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitRequest(context.Background(), at(s, 0.52, 0.52), at(s, 0.85, 0.85), 1.5); err != nil {
		t.Fatal(err)
	}
	snap := s.MetricsSnapshot()
	if got := snap.Counters["mtshare_match_dispatches_total"]; got != 1 {
		t.Fatalf("dispatches counter = %d, want 1", got)
	}
	if h, ok := snap.Histograms["mtshare_match_dispatch_seconds"]; !ok || h.Count != 1 {
		t.Fatalf("dispatch histogram = %+v, want one observation", h)
	}
	var sb strings.Builder
	if err := s.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mtshare_match_dispatches_total 1",
		"mtshare_match_dispatch_seconds_bucket",
		"mtshare_roadnet_cache_hits_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func TestFareQuote(t *testing.T) {
	s := newSystem(t, false)
	fs := s.FareQuote(9000, []SharedRide{
		{DirectMeters: 6000, RiddenMeters: 7000},
		{DirectMeters: 5000, RiddenMeters: 5000},
	})
	if fs.Benefit <= 0 {
		t.Fatalf("no benefit: %+v", fs)
	}
	if len(fs.Fares) != 2 || len(fs.Savings) != 2 {
		t.Fatal("fares misaligned")
	}
	if fs.Savings[0] <= fs.Savings[1] {
		t.Fatal("larger detour did not earn larger saving")
	}
	if fs.DriverIncome <= fs.RouteFare {
		t.Fatal("driver earned no benefit share")
	}
}

func TestProbabilisticCruising(t *testing.T) {
	s := newSystem(t, true)
	id, err := s.AddTaxi(at(s, 0.1, 0.1), 4)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := s.Taxi(id)
	for i := 0; i < 200; i++ {
		s.Advance(5 * time.Second)
	}
	after, _ := s.Taxi(id)
	// An idle taxi in probabilistic mode cruises toward demand.
	if before.Position == after.Position {
		t.Fatal("idle taxi never cruised")
	}
}

func TestAdvanceClock(t *testing.T) {
	s := newSystem(t, false)
	s.Advance(30 * time.Second)
	s.Advance(30 * time.Second)
	if s.Now() != time.Minute {
		t.Fatalf("Now = %v", s.Now())
	}
}

// TestQueueLifecycle walks a request through the full pending-queue
// lifecycle: parked on dispatch failure (ErrQueued), backpressure when
// the queue fills (ErrQueueFull), then served by a later tick's batch
// re-dispatch once a taxi appears.
func TestQueueLifecycle(t *testing.T) {
	s, err := New(Options{Seed: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// No fleet yet: requests park instead of failing outright.
	a1, err := s.SubmitRequest(ctx, at(s, 0.2, 0.2), at(s, 0.6, 0.6), 1.8)
	if !errors.Is(err, ErrQueued) {
		t.Fatalf("first request: err = %v, want ErrQueued", err)
	}
	if a1.Request == 0 {
		t.Fatal("queued request carries no ID")
	}
	a2, err := s.SubmitRequest(ctx, at(s, 0.25, 0.2), at(s, 0.6, 0.65), 1.8)
	if !errors.Is(err, ErrQueued) {
		t.Fatalf("second request: err = %v, want ErrQueued", err)
	}
	if _, err := s.SubmitRequest(ctx, at(s, 0.3, 0.3), at(s, 0.7, 0.7), 1.8); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third request: err = %v, want ErrQueueFull", err)
	}
	qs := s.QueueStats()
	if !qs.Enabled || qs.Capacity != 2 || qs.Depth != 2 || qs.Enqueued != 2 || qs.Rejected != 1 {
		t.Fatalf("after filling: %+v", qs)
	}

	// One empty tick: the retry round runs, finds no taxi, and the
	// requests stay parked (so their eventual waits are positive).
	if _, qo := s.AdvanceWithQueue(time.Second); len(qo.Matched) != 0 || len(qo.Expired) != 0 {
		t.Fatalf("tick with no fleet: %+v", qo)
	}

	// A taxi appears near the pickups; the next retry rounds drain the
	// queue via batch re-dispatch.
	if _, err := s.AddTaxi(at(s, 0.2, 0.2), 4); err != nil {
		t.Fatal(err)
	}
	var matched []QueueMatchEvent
	for i := 0; i < 3 && len(matched) < 2; i++ {
		_, qo := s.AdvanceWithQueue(time.Second)
		matched = append(matched, qo.Matched...)
	}
	if len(matched) != 2 {
		t.Fatalf("queue matched %d requests, want 2: %+v", len(matched), matched)
	}
	seen := map[RequestID]bool{}
	for _, m := range matched {
		seen[m.Request] = true
		if m.Wait <= 0 {
			t.Fatalf("match %+v reports no wait time", m)
		}
	}
	if !seen[a1.Request] || !seen[a2.Request] {
		t.Fatalf("matched %v, want requests %d and %d", matched, a1.Request, a2.Request)
	}
	qs = s.QueueStats()
	if qs.Depth != 0 || qs.Served != 2 {
		t.Fatalf("after draining: %+v", qs)
	}
}

// TestQueueExpiry pins the eviction side: a parked request whose pickup
// deadline passes without a taxi is evicted with a distinct terminal
// outcome, not retried forever.
func TestQueueExpiry(t *testing.T) {
	s, err := New(Options{Seed: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.SubmitRequest(context.Background(), at(s, 0.3, 0.3), at(s, 0.7, 0.7), 1.3)
	if !errors.Is(err, ErrQueued) {
		t.Fatalf("err = %v, want ErrQueued", err)
	}
	// First tick moves the clock past every deadline; the second tick's
	// queue maintenance (which runs before taxis advance) evicts.
	s.AdvanceWithQueue(2 * time.Hour)
	_, qo := s.AdvanceWithQueue(time.Second)
	if len(qo.Expired) != 1 || qo.Expired[0] != a.Request {
		t.Fatalf("expired %v, want [%d]", qo.Expired, a.Request)
	}
	qs := s.QueueStats()
	if qs.Depth != 0 || qs.Expired != 1 {
		t.Fatalf("after expiry: %+v", qs)
	}
}
