// Durable engine state: the facade's write-ahead-log integration.
//
// With Options.Durability enabled, every facade event (AddTaxi,
// SubmitRequest, ReportStreetHail, Advance, and the closing counters
// seal) is appended to a crash-safe WAL in the replay-v3 encoding —
// record 0 is the replay header, record i+1 is event i — and a
// deterministic snapshot of the whole system is written every N Advance
// ticks. Reopening a System over a non-empty WAL directory recovers it:
// the header must match byte for byte, the latest valid snapshot is
// restored, and the WAL tail is re-executed through the same public
// methods that produced it, with every re-executed outcome diffed
// against the recorded one. Because the engine is deterministic, the
// recovered state is byte-identical to the state the crashed process
// held at its last committed record.
package mtshare

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/fleet"
	"repro/internal/match"
	"repro/internal/replay"
	"repro/internal/wal"
)

// sysSnapshot is the serialized form of a whole System at an event
// boundary. Header pins the snapshot to the world it was taken in;
// Events is the WAL watermark (events executed when the snapshot was
// captured — the same number the snapshot file is named after).
type sysSnapshot struct {
	Header   json.RawMessage      `json:"header"`
	Events   int64                `json:"events"`
	Now      float64              `json:"now"`
	Ticks    int64                `json:"ticks"`
	NextTaxi int64                `json:"next_taxi"`
	NextReq  int64                `json:"next_req"`
	Requests []fleet.RequestState `json:"requests,omitempty"`
	Engine   *match.DurableState  `json:"engine"`
	Queue    *match.PoolState     `json:"queue,omitempty"`
	Counters map[string]int64     `json:"counters,omitempty"`
}

// openDurability attaches the WAL to a freshly built (still virgin)
// System: a fresh directory starts a new log with the header as record
// 0; a non-empty one triggers recovery.
func (s *System) openDurability(opts Options) error {
	hdr := buildHeader(opts, s.g, replay.Version)
	hdrLine, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("mtshare: durability: marshal header: %w", err)
	}
	wlog, err := wal.Open(opts.Durability, s.engine.Metrics())
	if err != nil {
		return err
	}
	if wlog.Records() == 0 {
		enc, err := replay.NewEncoder(wlog.AppendWriter(), hdr)
		if err != nil {
			wlog.Close()
			return err
		}
		s.walEnc = enc
	} else {
		if err := s.recoverFromWAL(wlog, hdrLine); err != nil {
			wlog.Close()
			return fmt.Errorf("mtshare: durability: recover: %w", err)
		}
		s.walEnc = replay.ResumeEncoder(wlog.AppendWriter())
	}
	s.wlog = wlog
	s.walHeader = hdrLine
	s.snapEvery = opts.Durability.SnapshotEveryTicks
	return nil
}

// recoverFromWAL rebuilds the system's state from the log: header check,
// snapshot restore, tail re-execution with outcome verification.
func (s *System) recoverFromWAL(wlog *wal.Log, hdrLine []byte) error {
	// Record 0 must be byte-identical to the header this world was built
	// from — otherwise the WAL belongs to a different configuration and
	// replaying it here would silently produce a different system.
	first, err := bufio.NewReader(wlog.NewReader()).ReadBytes('\n')
	if err != nil && err != io.EOF {
		return err
	}
	if got := bytes.TrimSuffix(first, []byte("\n")); !bytes.Equal(got, hdrLine) {
		return fmt.Errorf("header mismatch: log opened under %s, options build %s", got, hdrLine)
	}
	_, events, err := replay.ReadAll(wlog.NewReader())
	if err != nil {
		return err
	}

	var watermark int64
	if w, payload, ok, err := wlog.LatestSnapshotAtOrBefore(int64(len(events))); err != nil {
		return err
	} else if ok {
		var snap sysSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return fmt.Errorf("decode snapshot at %d: %w", w, err)
		}
		if !bytes.Equal(snap.Header, hdrLine) {
			return fmt.Errorf("snapshot at %d fingerprints a different header", w)
		}
		if snap.Events != w {
			return fmt.Errorf("snapshot file at %d claims watermark %d", w, snap.Events)
		}
		if err := s.restoreSnapshot(&snap); err != nil {
			return fmt.Errorf("restore snapshot at %d: %w", w, err)
		}
		watermark = w
	}
	s.eventIndex = watermark
	return s.reexecuteTail(events, watermark)
}

// restoreSnapshot lays a snapshot onto the virgin system.
func (s *System) restoreSnapshot(snap *sysSnapshot) error {
	s.now = snap.Now
	s.ticks = snap.Ticks
	s.nextTaxi = TaxiID(snap.NextTaxi)
	s.nextReq = RequestID(snap.NextReq)
	for _, rs := range snap.Requests {
		req := fleet.RestoreRequest(rs)
		s.requests[RequestID(req.ID)] = req
	}
	resolve := func(id fleet.RequestID) (*fleet.Request, bool) {
		r, ok := s.requests[RequestID(id)]
		return r, ok
	}
	restored, err := s.engine.RestoreDurable(snap.Engine, resolve)
	if err != nil {
		return err
	}
	s.scheme.RestoreIndexed(restored)
	for _, t := range restored {
		s.taxis[TaxiID(t.ID)] = t
	}
	switch {
	case snap.Queue != nil && s.queue == nil:
		return fmt.Errorf("snapshot carries a queue but QueueDepth is 0")
	case snap.Queue == nil && s.queue != nil:
		return fmt.Errorf("snapshot has no queue but QueueDepth is set")
	case snap.Queue != nil:
		if err := s.queue.RestoreDurable(*snap.Queue, resolve); err != nil {
			return err
		}
	}
	s.engine.Metrics().RestoreCounters(snap.Counters)
	return nil
}

// reexecuteTail drives the WAL events past the snapshot watermark back
// through the public API. s.onEvent intercepts each freshly produced
// event — nothing is re-appended — and diffs it against the recorded
// one; any divergence means the WAL and the engine disagree and recovery
// must fail rather than resurrect a subtly different world.
func (s *System) reexecuteTail(events []replay.Event, watermark int64) error {
	var divs []replay.Divergence
	var actual *replay.Event
	s.onEvent = func(ev replay.Event) { actual = &ev }
	defer func() { s.onEvent = nil }()

	ctx := context.Background()
	for k := range events {
		rec := &events[k]
		if rec.I < watermark {
			continue
		}
		if rec.Metrics != nil {
			// A clean-close counters seal. Verify and keep going: the
			// recovered system resumes the log, it does not end with it.
			divs = append(divs, replay.DiffCounters(rec.I, rec.Metrics.Counters, s.deterministicCounters())...)
			continue
		}
		actual = nil
		switch {
		case rec.AddTaxi != nil:
			s.AddTaxi(Point{Lat: rec.AddTaxi.At.Lat, Lng: rec.AddTaxi.At.Lng}, rec.AddTaxi.Capacity)
		case rec.Request != nil:
			s.SubmitRequest(s.reexecCtx(ctx, rec.I, rec.Request.Out.Err),
				Point{Lat: rec.Request.Pickup.Lat, Lng: rec.Request.Pickup.Lng},
				Point{Lat: rec.Request.Dropoff.Lat, Lng: rec.Request.Dropoff.Lng},
				rec.Request.Flexibility)
		case rec.Hail != nil:
			s.ReportStreetHail(s.reexecCtx(ctx, rec.I, rec.Hail.Out.Err), TaxiID(rec.Hail.Taxi),
				Point{Lat: rec.Hail.Pickup.Lat, Lng: rec.Hail.Pickup.Lng},
				Point{Lat: rec.Hail.Dropoff.Lat, Lng: rec.Hail.Dropoff.Lng},
				rec.Hail.Flexibility)
		case rec.Tick != nil:
			s.Advance(time.Duration(rec.Tick.DNanos))
		default:
			return fmt.Errorf("event %d has unknown kind", rec.I)
		}
		if actual == nil {
			return fmt.Errorf("event %d produced no outcome during re-execution", rec.I)
		}
		divs = append(divs, replay.DiffEvents(rec, actual)...)
		if len(divs) > 0 {
			break
		}
	}
	if len(divs) > 0 {
		return fmt.Errorf("recovered state diverges from the log: %s", divs[0].String())
	}
	return nil
}

// reexecCtx rebuilds the context an event originally ran under. Fault-
// plan cancellations re-inject themselves (MaybeCancel is deterministic
// in the event index); a caller-cancelled context is reconstructed from
// the recorded outcome so the re-executed call fails the same way.
func (s *System) reexecCtx(ctx context.Context, i int64, recordedErr string) context.Context {
	if (recordedErr == "canceled" || recordedErr == "deadline") && !s.faults.CancelsEvent(i) {
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		return cctx
	}
	return ctx
}

// maybeSnapshot writes a background snapshot when the tick cadence is
// due. Capture is synchronous — the state must be the event boundary's —
// but the (comparatively slow) marshal+fsync happens off the hot path;
// Close waits for in-flight writes.
func (s *System) maybeSnapshot() {
	if s.wlog == nil || s.snapEvery <= 0 || s.onEvent != nil || s.walDone {
		return
	}
	if s.ticks%int64(s.snapEvery) != 0 {
		return
	}
	snap := s.captureSnapshot()
	wlog := s.wlog
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		// The watermark promises every event below it is in the log, so
		// the group-committed tail must be fsynced before the snapshot
		// can become durable — otherwise a crash in between recovers a
		// snapshot carrying events the log lost. A dead WAL skips the
		// snapshot; recovery would reject it anyway.
		if wlog.Sync() != nil {
			return
		}
		// Failures (marshal included) land in Stats.SnapshotErr and the
		// mtshare_wal_snapshot_errors_total counter.
		wlog.WriteSnapshotJSON(snap.Events, snap)
	}()
}

// captureSnapshot serializes the system at the current event boundary.
// Everything captured is a deep copy, so the caller may keep mutating
// the live system while the snapshot marshals in the background.
func (s *System) captureSnapshot() *sysSnapshot {
	snap := &sysSnapshot{
		Header:   s.walHeader,
		Events:   s.eventIndex,
		Now:      s.now,
		Ticks:    s.ticks,
		NextTaxi: int64(s.nextTaxi),
		NextReq:  int64(s.nextReq),
		Engine:   s.engine.CaptureDurable(),
		Counters: s.deterministicCounters(),
	}
	ids := make([]RequestID, 0, len(s.requests))
	for id := range s.requests {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		snap.Requests = append(snap.Requests, fleet.CaptureRequest(s.requests[id]))
	}
	if s.queue != nil {
		ps := s.queue.CaptureDurable()
		snap.Queue = &ps
	}
	return snap
}
