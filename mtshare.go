// Package mtshare is a mobility-aware dynamic taxi-ridesharing library —
// a from-scratch Go reproduction of mT-Share (Liu, Gong, Li, Wu:
// "Mobility-Aware Dynamic Taxi Ridesharing", ICDE 2020; extended in IEEE
// IoT Journal 2022). It matches ride requests to shared taxis using
// bipartite map partitioning, mobility clustering, partition-filtered
// routing, and probabilistic routing toward offline (street-hailing)
// passengers, and settles fares with the paper's benefit-sharing payment
// model.
//
// The package is a thin facade over the internal implementation: build a
// System over a road network and historical trips, register taxis, submit
// requests, and advance time. See the examples/ directory for runnable
// walkthroughs and DESIGN.md for the architecture.
package mtshare

import (
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/match"
	"repro/internal/partition"
	"repro/internal/payment"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// Point is a geographic location in degrees.
type Point = geo.Point

// TaxiID identifies a registered taxi.
type TaxiID int64

// RequestID identifies a submitted ride request.
type RequestID int64

// Trip is one historical taxi trip used to mine mobility patterns.
type Trip struct {
	Origin Point
	Dest   Point
}

// Options configures a System.
type Options struct {
	// SyntheticCity generates the road network when no custom graph is
	// supplied: a Rows x Cols perturbed street grid.
	SyntheticCityRows int
	SyntheticCityCols int

	// Partitions is the target partition count κ (0 derives ~1 per 25
	// road vertices).
	Partitions int

	// SpeedKmh is the fleet speed (default 15, the paper's setting).
	SpeedKmh float64
	// SearchRangeMeters is the candidate search radius γ (default 2.5 km
	// scaled down to the city size when it exceeds the city diagonal).
	SearchRangeMeters float64
	// MaxDirectionDiffDegrees is θ, the mobility-clustering direction
	// tolerance (default 45°; λ = cos θ).
	MaxDirectionDiffDegrees float64
	// Probabilistic enables the mT-Share_pro behaviour: probabilistic
	// routing for taxis with spare seats and demand-seeking cruising of
	// idle taxis.
	Probabilistic bool

	// History supplies the trips mined for transition patterns. When nil
	// a synthetic workday is generated.
	History []Trip

	// Seed makes world generation deterministic.
	Seed int64
}

// System is a running ridesharing dispatcher.
type System struct {
	g      *roadnet.Graph
	spx    *roadnet.SpatialIndex
	engine *match.Engine
	scheme *match.Scheme
	pay    payment.Model

	now      float64
	taxis    map[TaxiID]*fleet.Taxi
	nextTaxi TaxiID
	nextReq  RequestID
	requests map[RequestID]*fleet.Request
}

// New builds a System. With zero Options it generates a deterministic
// ~3 km synthetic city and a day of synthetic history.
func New(opts Options) (*System, error) {
	if opts.SyntheticCityRows == 0 {
		opts.SyntheticCityRows = 24
	}
	if opts.SyntheticCityCols == 0 {
		opts.SyntheticCityCols = 24
	}
	if opts.SpeedKmh == 0 {
		opts.SpeedKmh = 15
	}
	if opts.MaxDirectionDiffDegrees == 0 {
		opts.MaxDirectionDiffDegrees = 45
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	cp := roadnet.DefaultCityParams(opts.SyntheticCityRows, opts.SyntheticCityCols)
	cp.Seed = opts.Seed
	g, err := roadnet.GenerateCity(cp)
	if err != nil {
		return nil, err
	}
	spx := roadnet.NewSpatialIndex(g, 250)

	history := opts.History
	if history == nil {
		min, max := g.Bounds()
		ds, err := trace.Generate(trace.Workday, trace.GenParams{
			Center:           geo.Midpoint(min, max),
			ExtentMeters:     geo.Equirect(geo.Point{Lat: min.Lat, Lng: min.Lng}, geo.Point{Lat: min.Lat, Lng: max.Lng}),
			TripsPerHourPeak: 300,
			UniformFrac:      0.15,
			Seed:             opts.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		for _, t := range ds.Trips {
			history = append(history, Trip{Origin: t.Origin, Dest: t.Dest})
		}
	}
	pairs := make([]struct{ Origin, Dest geo.Point }, len(history))
	for i, t := range history {
		pairs[i] = struct{ Origin, Dest geo.Point }{t.Origin, t.Dest}
	}
	kappa := opts.Partitions
	if kappa == 0 {
		kappa = g.NumVertices() / 25
		if kappa < 8 {
			kappa = 8
		}
	}
	pp := partition.DefaultParams(kappa)
	if pp.KTrans >= kappa {
		pp.KTrans = kappa / 2
	}
	pp.Seed = opts.Seed
	pt, err := partition.BuildBipartite(g, partition.SnapTrips(spx, pairs), pp)
	if err != nil {
		return nil, err
	}
	cfg := match.DefaultConfig()
	cfg.SpeedMps = opts.SpeedKmh * 1000 / 3600
	cfg.Lambda = geo.CosOfDegrees(opts.MaxDirectionDiffDegrees)
	if opts.SearchRangeMeters > 0 {
		cfg.SearchRangeMeters = opts.SearchRangeMeters
	} else {
		min, max := g.Bounds()
		diag := geo.Equirect(min, max)
		if cfg.SearchRangeMeters > diag/2 {
			cfg.SearchRangeMeters = diag / 2
		}
	}
	engine, err := match.NewEngine(pt, spx, cfg)
	if err != nil {
		return nil, err
	}
	return &System{
		g:        g,
		spx:      spx,
		engine:   engine,
		scheme:   match.NewScheme(engine, opts.Probabilistic),
		pay:      payment.DefaultModel(),
		taxis:    make(map[TaxiID]*fleet.Taxi),
		requests: make(map[RequestID]*fleet.Request),
	}, nil
}

// Bounds returns the road network's bounding box, useful for placing
// taxis and requests.
func (s *System) Bounds() (min, max Point) { return s.g.Bounds() }

// Now returns the current simulation time.
func (s *System) Now() time.Duration {
	return time.Duration(s.now * float64(time.Second))
}

// AddTaxi registers an empty taxi near the given position.
func (s *System) AddTaxi(at Point, capacity int) (TaxiID, error) {
	v, ok := s.spx.NearestVertex(at)
	if !ok {
		return 0, fmt.Errorf("mtshare: no road vertex near %v", at)
	}
	s.nextTaxi++
	t := fleet.NewTaxi(s.g, int64(s.nextTaxi), capacity, v)
	s.taxis[s.nextTaxi] = t
	s.scheme.AddTaxi(t, s.now)
	return s.nextTaxi, nil
}

// Assignment reports a successful match.
type Assignment struct {
	Request        RequestID
	Taxi           TaxiID
	PickupETA      time.Duration
	DropoffETA     time.Duration
	DetourMeters   float64
	CandidateTaxis int
	// FareEstimate is the regular (no-sharing) fare; the settled shared
	// fare after delivery is at most this.
	FareEstimate float64
}

// SubmitRequest matches an online ride request released now. flexibility
// is the factor ρ over the direct travel time that the passenger accepts
// as the delivery deadline (e.g. 1.3). ok is false when no taxi can serve
// the request within its constraints.
func (s *System) SubmitRequest(pickup, dropoff Point, flexibility float64) (Assignment, bool, error) {
	req, err := s.makeRequest(pickup, dropoff, flexibility, false)
	if err != nil {
		return Assignment{}, false, err
	}
	a, ok := s.engine.Dispatch(req, s.now, s.scheme.Probabilistic)
	if !ok {
		return Assignment{Request: RequestID(req.ID), CandidateTaxis: a.Candidates}, false, nil
	}
	if err := s.engine.Commit(a, s.now); err != nil {
		return Assignment{}, false, err
	}
	out := Assignment{
		Request:        RequestID(req.ID),
		Taxi:           TaxiID(a.Taxi.ID),
		DetourMeters:   a.DetourMeters,
		CandidateTaxis: a.Candidates,
		FareEstimate:   s.pay.Tariff.Fare(req.DirectMeters),
	}
	for i, ev := range a.Events {
		if ev.Req.ID != req.ID {
			continue
		}
		eta := time.Duration((a.Eval.ArrivalSeconds[i] - s.now) * float64(time.Second))
		if ev.Kind == fleet.Pickup {
			out.PickupETA = eta
		} else {
			out.DropoffETA = eta
		}
	}
	return out, true, nil
}

// ReportStreetHail handles an offline passenger hailing the given taxi at
// the roadside: the system validates an insertion into the taxi's current
// schedule, or falls back to dispatching another taxi (the paper's
// server-side behaviour). It returns the serving taxi.
func (s *System) ReportStreetHail(taxi TaxiID, pickup, dropoff Point, flexibility float64) (TaxiID, bool, error) {
	t, ok := s.taxis[taxi]
	if !ok {
		return 0, false, fmt.Errorf("mtshare: unknown taxi %d", taxi)
	}
	req, err := s.makeRequest(pickup, dropoff, flexibility, true)
	if err != nil {
		return 0, false, err
	}
	if s.engine.TryServeOffline(t, req, s.now) {
		return taxi, true, nil
	}
	a, ok := s.engine.Dispatch(req, s.now, s.scheme.Probabilistic)
	if !ok {
		return 0, false, nil
	}
	if err := s.engine.Commit(a, s.now); err != nil {
		return 0, false, err
	}
	return TaxiID(a.Taxi.ID), true, nil
}

func (s *System) makeRequest(pickup, dropoff Point, flexibility float64, offline bool) (*fleet.Request, error) {
	if flexibility < 1.05 {
		flexibility = 1.3
	}
	o, ok1 := s.spx.NearestVertex(pickup)
	d, ok2 := s.spx.NearestVertex(dropoff)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("mtshare: endpoints off the road network")
	}
	if o == d {
		return nil, fmt.Errorf("mtshare: pickup and dropoff snap to the same intersection")
	}
	direct := s.engine.Router().Cost(o, d)
	speed := s.engine.Config().SpeedMps
	s.nextReq++
	req := &fleet.Request{
		ID:           fleet.RequestID(s.nextReq),
		ReleaseAt:    s.Now(),
		Origin:       o,
		Dest:         d,
		Deadline:     s.Now() + time.Duration(direct/speed*flexibility*float64(time.Second)),
		DirectMeters: direct,
		Passengers:   1,
		Offline:      offline,
		OriginPt:     s.g.Point(o),
		DestPt:       s.g.Point(d),
	}
	s.requests[RequestID(req.ID)] = req
	return req, nil
}

// RideEvent reports a pickup or dropoff that occurred during Advance.
type RideEvent struct {
	Request RequestID
	Taxi    TaxiID
	// Pickup is true for pickups, false for deliveries.
	Pickup bool
	At     time.Duration
}

// Advance moves the world forward by d: taxis drive their planned routes,
// firing pickups and deliveries. Idle taxis cruise toward likely demand
// when the system runs in probabilistic mode.
func (s *System) Advance(d time.Duration) []RideEvent {
	dt := d.Seconds()
	speed := s.engine.Config().SpeedMps
	var events []RideEvent
	for id, t := range s.taxis {
		startNow := s.now
		for _, v := range t.Advance(speed * dt) {
			when := time.Duration((startNow + v.MetersIntoTick/speed) * float64(time.Second))
			events = append(events, RideEvent{
				Request: RequestID(v.Event.Req.ID),
				Taxi:    id,
				Pickup:  v.Event.Kind == fleet.Pickup,
				At:      when,
			})
			if v.Event.Kind == fleet.Dropoff {
				s.engine.OnRequestDone(v.Event.Req)
			}
		}
		s.scheme.OnTaxiAdvanced(t, s.now+dt)
		if s.scheme.Probabilistic {
			s.scheme.PlanIdle(t, s.now+dt)
		}
	}
	s.now += dt
	return events
}

// TaxiStatus describes a taxi's current state.
type TaxiStatus struct {
	ID            TaxiID
	Position      Point
	OccupiedSeats int
	Capacity      int
	PendingEvents int
}

// Taxi returns the status of a taxi.
func (s *System) Taxi(id TaxiID) (TaxiStatus, error) {
	t, ok := s.taxis[id]
	if !ok {
		return TaxiStatus{}, fmt.Errorf("mtshare: unknown taxi %d", id)
	}
	return TaxiStatus{
		ID:            id,
		Position:      t.Point(),
		OccupiedSeats: t.OccupiedSeats(),
		Capacity:      t.Capacity,
		PendingEvents: len(t.Schedule()),
	}, nil
}

// FareQuote applies the payment model to a completed shared ride group.
// Each entry pairs a passenger's direct (shortest-path) distance with the
// distance actually ridden; routeMeters is the shared route length. See
// payment.Model for the underlying Eqs. 5-8.
func (s *System) FareQuote(routeMeters float64, rides []SharedRide) FareSettlement {
	recs := make([]payment.RideRecord, len(rides))
	for i, r := range rides {
		recs[i] = payment.RideRecord{
			ID:           fleet.RequestID(i + 1),
			DirectMeters: r.DirectMeters,
			SharedMeters: r.RiddenMeters,
			Completed:    true,
		}
	}
	st := s.pay.Settle(routeMeters, recs)
	out := FareSettlement{
		RouteFare:    st.RouteFare,
		Benefit:      st.Benefit,
		DriverIncome: st.DriverIncome,
	}
	for i := range rides {
		id := fleet.RequestID(i + 1)
		out.Fares = append(out.Fares, st.Fares[id])
		out.Savings = append(out.Savings, st.Savings[id])
	}
	return out
}

// SharedRide describes one passenger of a completed shared trip.
type SharedRide struct {
	DirectMeters float64
	RiddenMeters float64
}

// FareSettlement is the outcome of FareQuote, index-aligned with the
// input rides.
type FareSettlement struct {
	RouteFare    float64
	Benefit      float64
	DriverIncome float64
	Fares        []float64
	Savings      []float64
}

// Stats summarises the system.
type Stats struct {
	RoadVertices     int
	RoadEdges        int
	Partitions       int
	Taxis            int
	Requests         int
	IndexMemoryBytes int64
}

// Stats returns a system snapshot.
func (s *System) Stats() Stats {
	return Stats{
		RoadVertices:     s.g.NumVertices(),
		RoadEdges:        s.g.NumEdges(),
		Partitions:       s.engine.Partitioning().NumPartitions(),
		Taxis:            len(s.taxis),
		Requests:         len(s.requests),
		IndexMemoryBytes: s.engine.IndexMemoryBytes(),
	}
}
