// Package mtshare is a mobility-aware dynamic taxi-ridesharing library —
// a from-scratch Go reproduction of mT-Share (Liu, Gong, Li, Wu:
// "Mobility-Aware Dynamic Taxi Ridesharing", ICDE 2020; extended in IEEE
// IoT Journal 2022). It matches ride requests to shared taxis using
// bipartite map partitioning, mobility clustering, partition-filtered
// routing, and probabilistic routing toward offline (street-hailing)
// passengers, and settles fares with the paper's benefit-sharing payment
// model.
//
// The package is a thin facade over the internal implementation: build a
// System over a road network and historical trips, register taxis, submit
// requests, and advance time. See the examples/ directory for runnable
// walkthroughs and DESIGN.md for the architecture.
package mtshare

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/payment"
	"repro/internal/replay"
	"repro/internal/roadnet"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Point is a geographic location in degrees.
type Point = geo.Point

// TaxiID identifies a registered taxi.
type TaxiID int64

// RequestID identifies a submitted ride request.
type RequestID int64

// Trip is one historical taxi trip used to mine mobility patterns.
type Trip struct {
	Origin Point
	Dest   Point
}

// Options configures a System.
type Options struct {
	// SyntheticCity generates the road network when no custom graph is
	// supplied: a Rows x Cols perturbed street grid.
	SyntheticCityRows int
	SyntheticCityCols int

	// Partitions is the target partition count κ (0 derives ~1 per 25
	// road vertices).
	Partitions int

	// SpeedKmh is the fleet speed (default 15, the paper's setting).
	SpeedKmh float64
	// SearchRangeMeters is the candidate search radius γ (default 2.5 km
	// scaled down to the city size when it exceeds the city diagonal).
	SearchRangeMeters float64
	// MaxDirectionDiffDegrees is θ, the mobility-clustering direction
	// tolerance (default 45°; λ = cos θ).
	MaxDirectionDiffDegrees float64
	// Probabilistic enables the mT-Share_pro behaviour: probabilistic
	// routing for taxis with spare seats and demand-seeking cruising of
	// idle taxis.
	Probabilistic bool

	// Parallelism bounds the dispatch worker pool that evaluates
	// candidate taxis concurrently. 0 uses GOMAXPROCS; 1 is strictly
	// sequential. Every level produces identical assignments.
	Parallelism int

	// DisableLandmarkLB turns off the landmark distance oracle that
	// screens candidate taxis with an admissible lower bound before exact
	// schedule evaluation. The oracle is lossless — assignments are
	// identical with it on or off — so the knob exists for baselines and
	// the ablate-landmark A/B comparison, not for correctness.
	DisableLandmarkLB bool

	// DisableCH turns off the contraction-hierarchy routing backend built
	// at world construction; cold shortest-path queries fall back to
	// bidirectional Dijkstra. The hierarchy is exact — costs are
	// bit-identical either way — so the knob exists for baselines and the
	// ablate-ch A/B comparison, not for correctness.
	DisableCH bool

	// QueueDepth bounds the pending-request queue. When positive, a
	// request that finds no feasible taxi is parked (SubmitRequest returns
	// ErrQueued) and re-dispatched in deterministic batches on Advance
	// ticks until it is served or its pickup deadline passes; when the
	// queue is full the request is rejected with ErrQueueFull. Zero (the
	// default) disables queueing: dispatch failures return
	// ErrNoTaxiAvailable immediately.
	QueueDepth int
	// RetryEveryTicks runs the queue's batch re-dispatch on every Nth
	// Advance call (default 1 — every tick). Expired requests are evicted
	// on every tick regardless.
	RetryEveryTicks int
	// BatchAssign switches the queue's retry rounds from greedy deadline-
	// order commits to a global min-cost assignment over the full
	// (request, taxi) cost graph, so a pending request can yield its
	// first-choice taxi to a tighter competitor instead of starving it
	// (see match.Config.BatchAssign). Deterministic at every Parallelism
	// level and shard count; the default keeps the greedy rounds.
	BatchAssign bool

	// Sharding splits the dispatcher into Shards independent match
	// engines, each owning a contiguous range of map partitions with its
	// own fleet slice, spatial index, and instruments. Requests route to
	// the shard owning their pickup partition; candidates owned by other
	// shards are resolved through a deterministic two-phase
	// reserve/commit, so a sharded run is bit-identical to the
	// single-engine build. The zero value (Shards 0 or 1) keeps the
	// single engine — existing callers need not change anything.
	Sharding ShardingOptions

	// History supplies the trips mined for transition patterns. When nil
	// a synthetic workday is generated.
	History []Trip

	// Seed makes world generation deterministic.
	Seed int64

	// Metrics receives the system's instruments (dispatch-stage
	// histograms, router cache counters, index gauges). Nil allocates a
	// private registry, retrievable via System.Metrics.
	Metrics *obs.Registry

	// TraceSampleEvery samples one in N dispatches with a span tree when
	// positive; sampled trees are delivered to TraceHandler. Zero
	// disables tracing.
	TraceSampleEvery int
	// TraceHandler receives sampled root spans. It may be called from
	// the goroutine that ran the dispatch.
	TraceHandler func(*obs.Span)

	// RecordTo, when set, records the run to this writer as a versioned
	// JSONL replay log: the header (seed, options, graph fingerprint,
	// fault plan) followed by every AddTaxi / SubmitRequest /
	// ReportStreetHail / Advance call with its outcome, closed by a
	// deterministic-counters snapshot on Close. Replay the log with
	// Replay (or cmd/mtshare-replay). Recording requires the synthetic
	// history: a custom History is not serialised into the log.
	RecordTo io.Writer

	// Durability, when Dir is set, makes the system crash-recoverable:
	// every event is appended to a CRC-framed, fsync'd write-ahead log in
	// Dir (the replay event encoding, so the WAL doubles as a replay
	// log), and — when SnapshotEveryTicks is positive — a deterministic
	// state snapshot is written every N Advance ticks so recovery replays
	// only the tail. Reopening a System over a non-empty Dir recovers:
	// the latest valid snapshot is restored and the WAL tail re-executed,
	// with every re-executed outcome verified against the recorded one.
	// Like RecordTo, durability requires the synthetic history.
	Durability DurabilityOptions

	// Faults enables the deterministic fault-injection layer: router
	// unreachability faults and latency spikes, pre-cancelled dispatch
	// contexts, and a forced shutdown, all derived from the plan's seed
	// and the event index. The plan travels in the recorded log header,
	// so fault-injected runs replay bit-identically.
	Faults *FaultPlan

	// headerVersion, when non-zero, overrides the version stamped into a
	// recorded log's header. Replay sets it to the recorded log's own
	// version so re-recording an older log reproduces its header byte for
	// byte; everyone else leaves it zero and records replay.Version.
	headerVersion int
}

// ShardingOptions configures the sharded dispatcher; see Options.Sharding
// and match.ShardingConfig for field semantics. The zero value selects
// the single-engine dispatcher.
type ShardingOptions = match.ShardingConfig

// FaultPlan configures deterministic fault injection; see
// Options.Faults. The zero Every/At fields disable each fault class.
type FaultPlan = replay.FaultPlan

// DurabilityOptions configures the write-ahead log and snapshot cadence;
// see Options.Durability and wal.Options for field semantics. The zero
// value (empty Dir) disables durability.
type DurabilityOptions = wal.Options

// DefaultOptions returns the configuration New applies when fields are
// left zero: a deterministic 24x24 synthetic city, the paper's 15 km/h
// fleet speed, and a 45° mobility-clustering direction tolerance.
func DefaultOptions() Options {
	return Options{
		SyntheticCityRows:       24,
		SyntheticCityCols:       24,
		SpeedKmh:                15,
		MaxDirectionDiffDegrees: 45,
		Seed:                    1,
	}
}

// Validate reports whether the options are coherent. Zero-valued fields
// are legal (New fills them from DefaultOptions); explicitly negative or
// out-of-range values are not. Errors wrap ErrInvalidOptions.
func (o Options) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidOptions, fmt.Sprintf(format, args...))
	}
	if o.SyntheticCityRows < 0 || o.SyntheticCityCols < 0 {
		return fail("synthetic city dimensions %dx%d must not be negative", o.SyntheticCityRows, o.SyntheticCityCols)
	}
	if (o.SyntheticCityRows > 0 && o.SyntheticCityRows < 2) || (o.SyntheticCityCols > 0 && o.SyntheticCityCols < 2) {
		return fail("synthetic city needs at least 2x2 intersections, got %dx%d", o.SyntheticCityRows, o.SyntheticCityCols)
	}
	if o.Partitions < 0 {
		return fail("partitions %d must not be negative", o.Partitions)
	}
	if o.SpeedKmh < 0 {
		return fail("speed %g km/h must not be negative", o.SpeedKmh)
	}
	if o.SearchRangeMeters < 0 {
		return fail("search range %g m must not be negative", o.SearchRangeMeters)
	}
	if o.MaxDirectionDiffDegrees < 0 || o.MaxDirectionDiffDegrees > 180 {
		return fail("direction tolerance %g° must be within [0, 180]", o.MaxDirectionDiffDegrees)
	}
	if o.TraceSampleEvery < 0 {
		return fail("trace sample rate %d must not be negative", o.TraceSampleEvery)
	}
	if o.QueueDepth < 0 {
		return fail("queue depth %d must not be negative", o.QueueDepth)
	}
	if o.RetryEveryTicks < 0 {
		return fail("retry interval %d ticks must not be negative", o.RetryEveryTicks)
	}
	if o.RetryEveryTicks > 0 && o.QueueDepth == 0 {
		return fail("RetryEveryTicks requires QueueDepth > 0")
	}
	if o.RecordTo != nil && o.History != nil {
		return fail("recording requires the synthetic history; custom History is not serialised into the log")
	}
	if o.Parallelism < 0 {
		return fail("parallelism %d must not be negative", o.Parallelism)
	}
	if o.Durability.Enabled() {
		if o.History != nil {
			return fail("durability requires the synthetic history; custom History is not serialised into the WAL")
		}
		if o.Durability.SnapshotEveryTicks < 0 {
			return fail("snapshot interval %d ticks must not be negative", o.Durability.SnapshotEveryTicks)
		}
	}
	if err := o.Sharding.Validate(); err != nil {
		return fail("sharding: %v", err)
	}
	if err := o.Faults.Validate(); err != nil {
		return fail("fault plan: %v", err)
	}
	return nil
}

// withDefaults fills zero-valued fields from DefaultOptions.
func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.SyntheticCityRows == 0 {
		o.SyntheticCityRows = def.SyntheticCityRows
	}
	if o.SyntheticCityCols == 0 {
		o.SyntheticCityCols = def.SyntheticCityCols
	}
	if o.SpeedKmh == 0 {
		o.SpeedKmh = def.SpeedKmh
	}
	if o.MaxDirectionDiffDegrees == 0 {
		o.MaxDirectionDiffDegrees = def.MaxDirectionDiffDegrees
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	if o.QueueDepth > 0 && o.RetryEveryTicks == 0 {
		o.RetryEveryTicks = 1
	}
	return o
}

// System is a running ridesharing dispatcher. It is not safe for
// concurrent use; internal/server provides the concurrent HTTP front.
type System struct {
	g      *roadnet.Graph
	spx    *roadnet.SpatialIndex
	engine match.Dispatcher
	scheme *match.Scheme
	pay    payment.Model

	now      float64
	taxis    map[TaxiID]*fleet.Taxi
	nextTaxi TaxiID
	nextReq  RequestID
	requests map[RequestID]*fleet.Request
	closed   bool

	// Pending-request queue (nil when Options.QueueDepth is 0): requests
	// that found no taxi wait here for batched re-dispatch every
	// retryEvery Advance ticks. ticks counts Advance calls. The pool is
	// dispatcher-provided: a single bounded queue for the single engine,
	// a per-shard queue group under one global bound when sharded.
	queue      match.Pool
	retryEvery int
	ticks      int64

	// Record/replay state: the log encoder (nil when not recording),
	// the fault plan and its router layer (nil without faults), and the
	// monotonically increasing event index every facade call consumes.
	rec         *replay.Encoder
	recDone     bool
	faults      *replay.FaultPlan
	faultRouter *replay.FaultRouter
	eventIndex  int64

	// Durability state (nil/zero without Options.Durability): the WAL,
	// the encoder appending events to it, the serialized header line the
	// WAL opened under (snapshot fingerprint), the snapshot cadence, and
	// the in-flight background snapshot writes Close waits for. onEvent,
	// when set, intercepts recorded events instead of appending them —
	// recovery re-executes the WAL tail under it to verify outcomes.
	wlog      *wal.Log
	walEnc    *replay.Encoder
	walDone   bool
	walHeader []byte
	snapEvery int
	snapWG    sync.WaitGroup
	onEvent   func(replay.Event)
	// walErr latches the WAL's sticky append/fsync error the moment
	// record observes it (setting closed alongside): the call whose
	// event failed to persist returns it instead of a clean ack, and
	// every later submission fails — a system that can no longer
	// persist must not keep acknowledging work.
	walErr error
}

// New builds a System. Zero-valued Options fields take the
// DefaultOptions values — the zero Options generates a deterministic
// ~3 km synthetic city and a day of synthetic history. Invalid options
// fail with an error wrapping ErrInvalidOptions.
func New(opts Options) (*System, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	cp := roadnet.DefaultCityParams(opts.SyntheticCityRows, opts.SyntheticCityCols)
	cp.Seed = opts.Seed
	g, err := roadnet.GenerateCity(cp)
	if err != nil {
		return nil, err
	}
	spx := roadnet.NewSpatialIndex(g, 250)

	history := opts.History
	if history == nil {
		min, max := g.Bounds()
		ds, err := trace.Generate(trace.Workday, trace.GenParams{
			Center:           geo.Midpoint(min, max),
			ExtentMeters:     geo.Equirect(geo.Point{Lat: min.Lat, Lng: min.Lng}, geo.Point{Lat: min.Lat, Lng: max.Lng}),
			TripsPerHourPeak: 300,
			UniformFrac:      0.15,
			Seed:             opts.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		for _, t := range ds.Trips {
			history = append(history, Trip{Origin: t.Origin, Dest: t.Dest})
		}
	}
	pairs := make([]struct{ Origin, Dest geo.Point }, len(history))
	for i, t := range history {
		pairs[i] = struct{ Origin, Dest geo.Point }{t.Origin, t.Dest}
	}
	kappa := opts.Partitions
	if kappa == 0 {
		kappa = g.NumVertices() / 25
		if kappa < 8 {
			kappa = 8
		}
	}
	pp := partition.DefaultParams(kappa)
	if pp.KTrans >= kappa {
		pp.KTrans = kappa / 2
	}
	pp.Seed = opts.Seed
	pt, err := partition.BuildBipartite(g, partition.SnapTrips(spx, pairs), pp)
	if err != nil {
		return nil, err
	}
	cfg := match.DefaultConfig()
	cfg.SpeedMps = opts.SpeedKmh * 1000 / 3600
	cfg.Lambda = geo.CosOfDegrees(opts.MaxDirectionDiffDegrees)
	cfg.DisableLandmarkLB = opts.DisableLandmarkLB
	cfg.DisableCH = opts.DisableCH
	cfg.Metrics = opts.Metrics
	if opts.TraceSampleEvery > 0 {
		cfg.Tracer = obs.NewTracer(opts.TraceSampleEvery, opts.TraceHandler)
	}
	var faultRouter *replay.FaultRouter
	if opts.Faults.Active() {
		faultRouter = replay.NewFaultRouter(*opts.Faults)
		cfg.RouterWrap = faultRouter.Wrap
	}
	if opts.SearchRangeMeters > 0 {
		cfg.SearchRangeMeters = opts.SearchRangeMeters
	} else {
		min, max := g.Bounds()
		diag := geo.Equirect(min, max)
		if cfg.SearchRangeMeters > diag/2 {
			cfg.SearchRangeMeters = diag / 2
		}
	}
	cfg.Sharding = opts.Sharding
	cfg.Parallelism = opts.Parallelism
	cfg.BatchAssign = opts.BatchAssign
	engine, err := match.NewDispatcher(pt, spx, cfg)
	if err != nil {
		return nil, err
	}
	s := &System{
		g:           g,
		spx:         spx,
		engine:      engine,
		scheme:      match.NewScheme(engine, opts.Probabilistic),
		pay:         payment.DefaultModel(),
		taxis:       make(map[TaxiID]*fleet.Taxi),
		requests:    make(map[RequestID]*fleet.Request),
		faults:      opts.Faults,
		faultRouter: faultRouter,
	}
	if opts.QueueDepth > 0 {
		s.queue = engine.NewPendingPool(opts.QueueDepth)
		s.retryEvery = opts.RetryEveryTicks
	}
	if opts.RecordTo != nil {
		ver := opts.headerVersion
		if ver == 0 {
			ver = replay.Version
		}
		rec, err := replay.NewEncoder(opts.RecordTo, buildHeader(opts, g, ver))
		if err != nil {
			return nil, err
		}
		s.rec = rec
	}
	if opts.Durability.Enabled() {
		if err := s.openDurability(opts); err != nil {
			if s.rec != nil {
				s.rec.Close()
			}
			return nil, err
		}
	}
	return s, nil
}

// buildHeader assembles the replay log header both the RecordTo log and
// the WAL open under. The same options must always serialize to the same
// bytes: snapshot fingerprinting and recovery's header check depend on
// it.
func buildHeader(opts Options, g *roadnet.Graph, version int) replay.Header {
	return replay.Header{
		Version:                 version,
		Kind:                    replay.KindSystem,
		Seed:                    opts.Seed,
		Rows:                    opts.SyntheticCityRows,
		Cols:                    opts.SyntheticCityCols,
		Partitions:              opts.Partitions,
		SpeedKmh:                opts.SpeedKmh,
		SearchRangeMeters:       opts.SearchRangeMeters,
		MaxDirectionDiffDegrees: opts.MaxDirectionDiffDegrees,
		Probabilistic:           opts.Probabilistic,
		DisableLandmarkLB:       opts.DisableLandmarkLB,
		DisableCH:               opts.DisableCH,
		QueueDepth:              opts.QueueDepth,
		RetryEveryTicks:         opts.RetryEveryTicks,
		BatchAssign:             opts.BatchAssign,
		Shards:                  opts.Sharding.Shards,
		BorderPolicy:            opts.Sharding.BorderPolicy,
		GraphFingerprint:        fmt.Sprintf("%016x", g.Fingerprint()),
		Faults:                  opts.Faults,
	}
}

// beginEvent consumes the next event index and applies the fault plan's
// per-event effects: the router fault epoch and the forced shutdown.
func (s *System) beginEvent() int64 {
	i := s.eventIndex
	s.eventIndex++
	if s.faultRouter != nil {
		s.faultRouter.SetEpoch(i)
	}
	if s.faults.ShutsDownAt(i) {
		s.closed = true
	}
	return i
}

// recording reports whether events must be assembled at all: a log
// encoder is active, the WAL is open, or recovery is intercepting.
func (s *System) recording() bool {
	return s.onEvent != nil || (s.rec != nil && !s.recDone) || (s.walEnc != nil && !s.walDone)
}

// record routes one event line: to the recovery interceptor during tail
// re-execution (and nowhere else — re-executed events are already in the
// WAL), otherwise to the record log and the WAL. A sticky WAL append or
// fsync error is latched in walErr and closes the system: the caller
// whose event failed to persist gets the error back (see durabilityErr),
// and everything after fails with ErrShutdown.
func (s *System) record(ev replay.Event) {
	if s.onEvent != nil {
		s.onEvent(ev)
		return
	}
	if s.rec != nil && !s.recDone {
		s.rec.Encode(ev)
	}
	if s.walEnc != nil && !s.walDone {
		s.walEnc.Encode(ev)
		if s.walErr == nil {
			err := s.walEnc.Err()
			if err == nil {
				err = s.wlog.Err() // interval-loop fsync failures surface here first
			}
			if err != nil {
				s.walErr = err
				s.closed = true
			}
		}
	}
}

// durabilityErr converts a just-latched WAL failure into the error the
// triggering call must return: its outcome is in memory but was never
// persisted, so acknowledging it cleanly would lie about what survives
// a restart. A call that already failed keeps its own error.
func (s *System) durabilityErr(err error) error {
	if err == nil && s.walErr != nil {
		return fmt.Errorf("mtshare: durability: %w", s.walErr)
	}
	return err
}

// errCode maps an API error onto the stable code the log stores; replay
// compares codes, so wrapped detail text may vary without diverging.
func errCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrQueued):
		return "queued"
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrRequestExpired):
		return "expired"
	case errors.Is(err, ErrNoTaxiAvailable):
		return "no_taxi"
	case errors.Is(err, ErrInvalidRequest):
		return "invalid_request"
	case errors.Is(err, ErrUnknownTaxi):
		return "unknown_taxi"
	case errors.Is(err, ErrShutdown):
		return "shutdown"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "error"
	}
}

// Bounds returns the road network's bounding box, useful for placing
// taxis and requests.
func (s *System) Bounds() (min, max Point) { return s.g.Bounds() }

// Now returns the current simulation time.
func (s *System) Now() time.Duration {
	return time.Duration(s.now * float64(time.Second))
}

// Close shuts the system down: subsequent submissions fail with
// ErrShutdown, and the dispatcher — every shard of it — is drained so
// no in-flight dispatch can commit a plan after Close returns. When
// recording, Close seals the log with a snapshot of the run's
// deterministic counters and reports any deferred write error. Close is
// idempotent.
func (s *System) Close() error {
	s.closed = true
	s.engine.Drain()
	if (s.rec != nil && !s.recDone) || (s.walEnc != nil && !s.walDone) {
		s.record(replay.Event{I: s.eventIndex, Metrics: &replay.MetricsRecord{
			Counters: s.deterministicCounters(),
		}})
	}
	var firstErr error
	if s.rec != nil && !s.recDone {
		s.recDone = true
		firstErr = s.rec.Close()
	}
	if s.walEnc != nil && !s.walDone {
		s.walDone = true
		if err := s.walEnc.Err(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.wlog != nil {
		s.snapWG.Wait()
		if err := s.wlog.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.wlog = nil
	}
	return firstErr
}

// DurabilityStats reports the WAL's segment, snapshot, and fsync
// accounting; ok is false when Options.Durability was not enabled.
func (s *System) DurabilityStats() (stats wal.Stats, ok bool) {
	if s.wlog == nil {
		return wal.Stats{}, false
	}
	return s.wlog.Stats(), true
}

// deterministicCounters snapshots the counters whose values are a pure
// function of the event stream (see replay.DeterministicCounters).
func (s *System) deterministicCounters() map[string]int64 {
	return replay.DeterministicCounters(s.MetricsSnapshot().Counters)
}

// Metrics returns the system's instrument registry — the one passed via
// Options.Metrics, or the private registry New allocated. Serve it with
// WriteMetrics or walk it with Registry.Snapshot.
func (s *System) Metrics() *obs.Registry { return s.engine.Metrics() }

// MetricsSnapshot returns a point-in-time copy of every counter, gauge,
// and histogram.
func (s *System) MetricsSnapshot() obs.Snapshot { return s.engine.Metrics().Snapshot() }

// WriteMetrics writes the registry in Prometheus text exposition format.
func (s *System) WriteMetrics(w io.Writer) error { return s.engine.Metrics().WritePrometheus(w) }

// AddTaxi registers an empty taxi near the given position.
func (s *System) AddTaxi(at Point, capacity int) (TaxiID, error) {
	i := s.beginEvent()
	id, err := s.addTaxi(at, capacity)
	s.record(replay.Event{I: i, AddTaxi: &replay.AddTaxiEvent{
		At:       replay.Point{Lat: at.Lat, Lng: at.Lng},
		Capacity: capacity,
		Taxi:     int64(id),
		Err:      errCode(err),
	}})
	return id, s.durabilityErr(err)
}

func (s *System) addTaxi(at Point, capacity int) (TaxiID, error) {
	if s.closed {
		return 0, ErrShutdown
	}
	v, ok := s.spx.NearestVertex(at)
	if !ok {
		return 0, fmt.Errorf("%w: no road vertex near %v", ErrInvalidRequest, at)
	}
	s.nextTaxi++
	t := fleet.NewTaxi(s.g, int64(s.nextTaxi), capacity, v)
	s.taxis[s.nextTaxi] = t
	s.scheme.AddTaxi(t, s.now)
	return s.nextTaxi, nil
}

// Assignment reports a successful match.
type Assignment struct {
	Request        RequestID
	Taxi           TaxiID
	PickupETA      time.Duration
	DropoffETA     time.Duration
	DetourMeters   float64
	CandidateTaxis int
	// FareEstimate is the regular (no-sharing) fare; the settled shared
	// fare after delivery is at most this.
	FareEstimate float64
}

// SubmitRequest matches an online ride request released now. flexibility
// is the factor ρ over the direct travel time that the passenger accepts
// as the delivery deadline (e.g. 1.3); zero takes the 1.3 default, and
// values below 1.05 are rejected with ErrInvalidRequest. When no taxi
// can serve the request the error is ErrNoTaxiAvailable and the returned
// Assignment still reports the candidate-set size. ctx cancellation is
// honoured between dispatch stages, and a tracer carried by ctx samples
// the dispatch span tree.
func (s *System) SubmitRequest(ctx context.Context, pickup, dropoff Point, flexibility float64) (Assignment, error) {
	i := s.beginEvent()
	ctx = s.faults.MaybeCancel(ctx, i)
	a, err := s.submitRequest(ctx, pickup, dropoff, flexibility)
	s.record(replay.Event{I: i, Request: &replay.RequestEvent{
		Pickup:      replay.Point{Lat: pickup.Lat, Lng: pickup.Lng},
		Dropoff:     replay.Point{Lat: dropoff.Lat, Lng: dropoff.Lng},
		Flexibility: flexibility,
		Out:         requestOutcome(a, err),
	}})
	return a, s.durabilityErr(err)
}

// requestOutcome renders an Assignment and error as the log outcome.
func requestOutcome(a Assignment, err error) replay.RequestOutcome {
	return replay.RequestOutcome{
		Err:             errCode(err),
		Request:         int64(a.Request),
		Taxi:            int64(a.Taxi),
		Candidates:      a.CandidateTaxis,
		DetourMeters:    a.DetourMeters,
		PickupETANanos:  int64(a.PickupETA),
		DropoffETANanos: int64(a.DropoffETA),
		FareEstimate:    a.FareEstimate,
	}
}

func (s *System) submitRequest(ctx context.Context, pickup, dropoff Point, flexibility float64) (Assignment, error) {
	if s.closed {
		return Assignment{}, ErrShutdown
	}
	req, err := s.makeRequest(pickup, dropoff, flexibility, false)
	if err != nil {
		return Assignment{}, err
	}
	a, ok := s.engine.DispatchContext(ctx, req, s.now, s.scheme.Probabilistic)
	if !ok {
		out := Assignment{Request: RequestID(req.ID), CandidateTaxis: a.Candidates}
		if err := ctx.Err(); err != nil {
			return out, err
		}
		// With the pending queue enabled the request parks for batched
		// re-dispatch instead of failing; a full queue is an explicit,
		// terminal backpressure signal, while an already-passed pickup
		// deadline is a terminal miss that no queueing could save.
		if s.queue != nil {
			switch s.queue.Push(req, s.now) {
			case match.PushAccepted:
				return out, ErrQueued
			case match.PushRejectedExpired:
				return out, ErrRequestExpired
			default:
				return out, ErrQueueFull
			}
		}
		return out, ErrNoTaxiAvailable
	}
	if err := s.engine.Commit(a, s.now); err != nil {
		return Assignment{}, err
	}
	out := Assignment{
		Request:        RequestID(req.ID),
		Taxi:           TaxiID(a.Taxi.ID),
		DetourMeters:   a.DetourMeters,
		CandidateTaxis: a.Candidates,
		FareEstimate:   s.pay.Tariff.Fare(req.DirectMeters),
	}
	for i, ev := range a.Events {
		if ev.Req.ID != req.ID {
			continue
		}
		eta := time.Duration((a.Eval.ArrivalSeconds[i] - s.now) * float64(time.Second))
		if ev.Kind == fleet.Pickup {
			out.PickupETA = eta
		} else {
			out.DropoffETA = eta
		}
	}
	return out, nil
}

// ReportStreetHail handles an offline passenger hailing the given taxi at
// the roadside: the system validates an insertion into the taxi's current
// schedule, or falls back to dispatching another taxi (the paper's
// server-side behaviour). It returns the serving taxi; when neither the
// hailed taxi nor any dispatched taxi can serve, the error is
// ErrNoTaxiAvailable.
func (s *System) ReportStreetHail(ctx context.Context, taxi TaxiID, pickup, dropoff Point, flexibility float64) (TaxiID, error) {
	i := s.beginEvent()
	ctx = s.faults.MaybeCancel(ctx, i)
	served, err := s.reportStreetHail(ctx, taxi, pickup, dropoff, flexibility)
	s.record(replay.Event{I: i, Hail: &replay.HailEvent{
		Taxi:        int64(taxi),
		Pickup:      replay.Point{Lat: pickup.Lat, Lng: pickup.Lng},
		Dropoff:     replay.Point{Lat: dropoff.Lat, Lng: dropoff.Lng},
		Flexibility: flexibility,
		Out:         replay.HailOutcome{Err: errCode(err), ServedBy: int64(served)},
	}})
	return served, s.durabilityErr(err)
}

func (s *System) reportStreetHail(ctx context.Context, taxi TaxiID, pickup, dropoff Point, flexibility float64) (TaxiID, error) {
	if s.closed {
		return 0, ErrShutdown
	}
	t, ok := s.taxis[taxi]
	if !ok {
		return 0, fmt.Errorf("%w: taxi %d", ErrUnknownTaxi, taxi)
	}
	req, err := s.makeRequest(pickup, dropoff, flexibility, true)
	if err != nil {
		return 0, err
	}
	if s.engine.TryServeOffline(t, req, s.now) {
		return taxi, nil
	}
	a, ok := s.engine.DispatchContext(ctx, req, s.now, s.scheme.Probabilistic)
	if !ok {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return 0, ErrNoTaxiAvailable
	}
	if err := s.engine.Commit(a, s.now); err != nil {
		return 0, err
	}
	return TaxiID(a.Taxi.ID), nil
}

func (s *System) makeRequest(pickup, dropoff Point, flexibility float64, offline bool) (*fleet.Request, error) {
	if flexibility == 0 {
		flexibility = 1.3
	}
	if flexibility < 1.05 {
		return nil, fmt.Errorf("%w: flexibility %g below minimum 1.05", ErrInvalidRequest, flexibility)
	}
	o, ok1 := s.spx.NearestVertex(pickup)
	d, ok2 := s.spx.NearestVertex(dropoff)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("%w: endpoints off the road network", ErrInvalidRequest)
	}
	if o == d {
		return nil, fmt.Errorf("%w: pickup and dropoff snap to the same intersection", ErrInvalidRequest)
	}
	direct := s.engine.Router().Cost(o, d)
	speed := s.engine.Config().SpeedMps
	s.nextReq++
	req := &fleet.Request{
		ID:           fleet.RequestID(s.nextReq),
		ReleaseAt:    s.Now(),
		Origin:       o,
		Dest:         d,
		Deadline:     s.Now() + time.Duration(direct/speed*flexibility*float64(time.Second)),
		DirectMeters: direct,
		Passengers:   1,
		Offline:      offline,
		OriginPt:     s.g.Point(o),
		DestPt:       s.g.Point(d),
	}
	s.requests[RequestID(req.ID)] = req
	return req, nil
}

// RideEvent reports a pickup or dropoff that occurred during Advance.
type RideEvent struct {
	Request RequestID
	Taxi    TaxiID
	// Pickup is true for pickups, false for deliveries.
	Pickup bool
	At     time.Duration
}

// QueueMatchEvent reports a queued request matched by a tick's batch
// re-dispatch round.
type QueueMatchEvent struct {
	Request RequestID
	Taxi    TaxiID
	// Wait is the time the request spent queued before matching.
	Wait time.Duration
	// Conflict marks a match that re-dispatched after an earlier commit
	// of the same batch took its first-choice taxi.
	Conflict bool
}

// QueueOutcome reports one Advance tick's pending-queue maintenance:
// the requests its re-dispatch round matched and those evicted because
// their pickup deadline passed while queued (the expired terminal
// outcome). Both lists are in deterministic (pickup deadline, request
// ID) order.
type QueueOutcome struct {
	Matched []QueueMatchEvent
	Expired []RequestID
}

// Advance moves the world forward by d: taxis drive their planned routes,
// firing pickups and deliveries. Idle taxis cruise toward likely demand
// when the system runs in probabilistic mode. Taxis advance in ID order,
// so the ride-event sequence is deterministic for a given call history.
// With the pending queue enabled, each tick first evicts expired queued
// requests and — every Options.RetryEveryTicks ticks — re-dispatches the
// rest as a batch; use AdvanceWithQueue to observe those outcomes.
func (s *System) Advance(d time.Duration) []RideEvent {
	events, _ := s.AdvanceWithQueue(d)
	return events
}

// AdvanceWithQueue is Advance, additionally reporting what the tick's
// queue maintenance did. With the queue disabled the QueueOutcome is
// always empty.
func (s *System) AdvanceWithQueue(d time.Duration) ([]RideEvent, QueueOutcome) {
	i := s.beginEvent()
	s.ticks++
	qo := s.serviceQueue()
	events := s.advance(d)
	if s.recording() {
		rides := make([]replay.Ride, len(events))
		for k, ev := range events {
			rides[k] = replay.Ride{
				Request: int64(ev.Request),
				Taxi:    int64(ev.Taxi),
				Pickup:  ev.Pickup,
				AtNanos: int64(ev.At),
			}
		}
		tick := &replay.TickEvent{DNanos: int64(d), Rides: rides}
		for _, m := range qo.Matched {
			tick.QueueMatched = append(tick.QueueMatched, replay.QueueMatch{
				Request:   int64(m.Request),
				Taxi:      int64(m.Taxi),
				WaitNanos: int64(m.Wait),
				Conflict:  m.Conflict,
			})
		}
		for _, id := range qo.Expired {
			tick.QueueExpired = append(tick.QueueExpired, int64(id))
		}
		s.record(replay.Event{I: i, Tick: tick})
	}
	s.maybeSnapshot()
	return events, qo
}

// serviceQueue runs one tick of pending-queue maintenance: evict every
// request whose pickup deadline strictly passed, then — when the retry
// interval is due — re-dispatch the remaining batch through the engine.
func (s *System) serviceQueue() QueueOutcome {
	var out QueueOutcome
	if s.queue == nil {
		return out
	}
	for _, it := range s.queue.ExpireBefore(s.now) {
		out.Expired = append(out.Expired, RequestID(it.Req.ID))
		s.engine.OnRequestDone(it.Req)
	}
	if s.ticks%int64(s.retryEvery) != 0 {
		return out
	}
	batch := s.queue.NextBatch()
	if len(batch) == 0 {
		return out
	}
	enqueuedAt := make(map[fleet.RequestID]float64, len(batch))
	reqs := make([]*fleet.Request, len(batch))
	for i, it := range batch {
		reqs[i] = it.Req
		enqueuedAt[it.Req.ID] = it.EnqueuedAt
	}
	for _, o := range s.engine.DispatchBatch(context.Background(), reqs, s.now, s.scheme.Probabilistic) {
		if !o.Served {
			continue
		}
		s.queue.MarkServed(o.Req.ID, s.now)
		out.Matched = append(out.Matched, QueueMatchEvent{
			Request:  RequestID(o.Req.ID),
			Taxi:     TaxiID(o.Assignment.Taxi.ID),
			Wait:     time.Duration((s.now - enqueuedAt[o.Req.ID]) * float64(time.Second)),
			Conflict: o.Conflict,
		})
	}
	return out
}

// QueueStats summarises the pending queue's lifecycle counters. Enabled
// is false (and every field zero) when Options.QueueDepth was 0.
type QueueStats struct {
	Enabled  bool
	Depth    int
	Capacity int
	Enqueued int64
	Rejected int64
	Retries  int64
	Served   int64
	Expired  int64
}

// QueueStats returns a snapshot of the pending queue.
func (s *System) QueueStats() QueueStats {
	if s.queue == nil {
		return QueueStats{}
	}
	qs := s.queue.Stats()
	return QueueStats{
		Enabled:  true,
		Depth:    qs.Depth,
		Capacity: qs.Capacity,
		Enqueued: qs.Enqueued,
		Rejected: qs.Rejected,
		Retries:  qs.Retries,
		Served:   qs.Served,
		Expired:  qs.Expired,
	}
}

func (s *System) advance(d time.Duration) []RideEvent {
	dt := d.Seconds()
	speed := s.engine.Config().SpeedMps
	ids := make([]TaxiID, 0, len(s.taxis))
	for id := range s.taxis {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var events []RideEvent
	for _, id := range ids {
		t := s.taxis[id]
		startNow := s.now
		for _, v := range t.Advance(speed * dt) {
			when := time.Duration((startNow + v.MetersIntoTick/speed) * float64(time.Second))
			events = append(events, RideEvent{
				Request: RequestID(v.Event.Req.ID),
				Taxi:    id,
				Pickup:  v.Event.Kind == fleet.Pickup,
				At:      when,
			})
			if v.Event.Kind == fleet.Dropoff {
				s.engine.OnRequestDone(v.Event.Req)
			}
		}
		s.scheme.OnTaxiAdvanced(t, s.now+dt)
		if s.scheme.Probabilistic {
			s.scheme.PlanIdle(t, s.now+dt)
		}
	}
	s.now += dt
	return events
}

// TaxiStatus describes a taxi's current state.
type TaxiStatus struct {
	ID            TaxiID
	Position      Point
	OccupiedSeats int
	Capacity      int
	PendingEvents int
}

// Taxi returns the status of a taxi.
func (s *System) Taxi(id TaxiID) (TaxiStatus, error) {
	t, ok := s.taxis[id]
	if !ok {
		return TaxiStatus{}, fmt.Errorf("%w: taxi %d", ErrUnknownTaxi, id)
	}
	return TaxiStatus{
		ID:            id,
		Position:      t.Point(),
		OccupiedSeats: t.OccupiedSeats(),
		Capacity:      t.Capacity,
		PendingEvents: len(t.Schedule()),
	}, nil
}

// FareQuote applies the payment model to a completed shared ride group.
// Each entry pairs a passenger's direct (shortest-path) distance with the
// distance actually ridden; routeMeters is the shared route length. See
// payment.Model for the underlying Eqs. 5-8.
func (s *System) FareQuote(routeMeters float64, rides []SharedRide) FareSettlement {
	recs := make([]payment.RideRecord, len(rides))
	for i, r := range rides {
		recs[i] = payment.RideRecord{
			ID:           fleet.RequestID(i + 1),
			DirectMeters: r.DirectMeters,
			SharedMeters: r.RiddenMeters,
			Completed:    true,
		}
	}
	st := s.pay.Settle(routeMeters, recs)
	out := FareSettlement{
		RouteFare:    st.RouteFare,
		Benefit:      st.Benefit,
		DriverIncome: st.DriverIncome,
	}
	for i := range rides {
		id := fleet.RequestID(i + 1)
		out.Fares = append(out.Fares, st.Fares[id])
		out.Savings = append(out.Savings, st.Savings[id])
	}
	return out
}

// SharedRide describes one passenger of a completed shared trip.
type SharedRide struct {
	DirectMeters float64
	RiddenMeters float64
}

// FareSettlement is the outcome of FareQuote, index-aligned with the
// input rides.
type FareSettlement struct {
	RouteFare    float64
	Benefit      float64
	DriverIncome float64
	Fares        []float64
	Savings      []float64
}

// Stats summarises the system.
type Stats struct {
	RoadVertices     int
	RoadEdges        int
	Partitions       int
	Shards           int
	Taxis            int
	Requests         int
	IndexMemoryBytes int64
}

// Stats returns a system snapshot.
func (s *System) Stats() Stats {
	return Stats{
		RoadVertices:     s.g.NumVertices(),
		RoadEdges:        s.g.NumEdges(),
		Partitions:       s.engine.Partitioning().NumPartitions(),
		Shards:           s.engine.ShardCount(),
		Taxis:            len(s.taxis),
		Requests:         len(s.requests),
		IndexMemoryBytes: s.engine.IndexMemoryBytes(),
	}
}

// ShardStats describes one dispatcher shard: its contiguous partition
// territory, current fleet slice, and the sharding-layer traffic
// counters. A single-engine System reports one shard owning every
// partition with zero cross-shard traffic.
type ShardStats struct {
	Shard int
	// FirstPartition..LastPartition is the shard's owned partition-ID
	// range; Partitions is its size.
	FirstPartition int
	LastPartition  int
	Partitions     int
	// Taxis is the shard's current fleet slice.
	Taxis int
	// Requests counts dispatches the shard handled as home shard.
	Requests int64
	// Cross-shard traffic: border candidates evaluated, winning taxis
	// another shard owned, batch conflicts over a cross-shard taxi, and
	// taxis migrated into the shard's territory.
	CrossShardCandidates  int64
	CrossShardAssignments int64
	BorderConflicts       int64
	Handoffs              int64
	// Assignments is the shard's committed match count.
	Assignments int64
}

// ShardStats returns the per-shard dispatcher breakdown, one entry per
// shard in shard order (a single entry covering the whole map when
// sharding is off).
func (s *System) ShardStats() []ShardStats {
	raw := s.engine.ShardStats()
	out := make([]ShardStats, len(raw))
	for i, sh := range raw {
		out[i] = ShardStats{
			Shard:                 sh.Shard,
			FirstPartition:        int(sh.FirstPartition),
			LastPartition:         int(sh.LastPartition),
			Partitions:            int(sh.LastPartition-sh.FirstPartition) + 1,
			Taxis:                 sh.Taxis,
			Requests:              sh.Requests,
			CrossShardCandidates:  sh.CrossShardCandidates,
			CrossShardAssignments: sh.CrossShardAssignments,
			BorderConflicts:       sh.BorderConflicts,
			Handoffs:              sh.Handoffs,
			Assignments:           sh.Engine.Assignments,
		}
	}
	return out
}
