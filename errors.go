package mtshare

import "errors"

// Sentinel errors returned by the facade (and mapped to HTTP error codes
// by internal/server). Match them with errors.Is; they may arrive wrapped
// with situational detail.
var (
	// ErrNoTaxiAvailable reports that dispatch ran but no taxi could
	// feasibly serve the request within its constraints. The Assignment
	// returned alongside it still carries the candidate-set size.
	ErrNoTaxiAvailable = errors.New("mtshare: no taxi can serve the request")

	// ErrQueued reports that no taxi could serve the request right now,
	// so it was parked in the pending queue (Options.QueueDepth > 0) for
	// batched re-dispatch on subsequent Advance ticks. The Assignment
	// returned alongside it carries the request ID; the terminal outcome
	// (served or expired) arrives as a RideEvent or QueueEvent from
	// Advance.
	ErrQueued = errors.New("mtshare: request queued for re-dispatch")

	// ErrQueueFull reports that dispatch failed and the pending queue had
	// no room (backpressure): the request is terminally rejected.
	ErrQueueFull = errors.New("mtshare: pending queue is full")

	// ErrRequestExpired reports that dispatch failed and the request's
	// pickup deadline had already passed when it would have parked in the
	// pending queue: terminally rejected, but not backpressure — retrying
	// the same request cannot succeed.
	ErrRequestExpired = errors.New("mtshare: request pickup deadline already passed")

	// ErrInvalidRequest reports a request that could not be interpreted:
	// endpoints off the road network, degenerate pickup/dropoff, or an
	// out-of-range flexibility factor.
	ErrInvalidRequest = errors.New("mtshare: invalid request")

	// ErrUnknownTaxi reports an operation on a taxi ID that was never
	// registered.
	ErrUnknownTaxi = errors.New("mtshare: unknown taxi")

	// ErrInvalidOptions reports that Options.Validate rejected the
	// configuration passed to New.
	ErrInvalidOptions = errors.New("mtshare: invalid options")

	// ErrShutdown reports an operation on a System after Close.
	ErrShutdown = errors.New("mtshare: system is shut down")
)
