package mtshare

import "errors"

// Sentinel errors returned by the facade (and mapped to HTTP error codes
// by internal/server). Match them with errors.Is; they may arrive wrapped
// with situational detail.
var (
	// ErrNoTaxiAvailable reports that dispatch ran but no taxi could
	// feasibly serve the request within its constraints. The Assignment
	// returned alongside it still carries the candidate-set size.
	ErrNoTaxiAvailable = errors.New("mtshare: no taxi can serve the request")

	// ErrInvalidRequest reports a request that could not be interpreted:
	// endpoints off the road network, degenerate pickup/dropoff, or an
	// out-of-range flexibility factor.
	ErrInvalidRequest = errors.New("mtshare: invalid request")

	// ErrUnknownTaxi reports an operation on a taxi ID that was never
	// registered.
	ErrUnknownTaxi = errors.New("mtshare: unknown taxi")

	// ErrInvalidOptions reports that Options.Validate rejected the
	// configuration passed to New.
	ErrInvalidOptions = errors.New("mtshare: invalid options")

	// ErrShutdown reports an operation on a System after Close.
	ErrShutdown = errors.New("mtshare: system is shut down")
)
