package mtshare

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/replay"
)

// TestGoldenReplays replays the checked-in golden logs: the current
// engine must reproduce them bit for bit. A divergence here means an
// engine change altered dispatch decisions — either fix the regression
// or regenerate the goldens (cmd/mtshare-replay -gen) and justify the
// behaviour change in review.
func TestGoldenReplays(t *testing.T) {
	for _, name := range ScenarioNames {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", name+".jsonl.gz")
			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("golden log missing (regenerate with: go run ./cmd/mtshare-replay -gen %s -o %s): %v", name, path, err)
			}
			defer f.Close()
			rep, err := Replay(f)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Events == 0 {
				t.Fatal("golden log has no events")
			}
			if rep.Diverged() {
				t.Fatalf("%d divergences over %d events; first: %s", len(rep.Divergences), rep.Events, rep.First())
			}
		})
	}
}

// TestGoldenMatchesScenario checks the goldens are in sync with the
// scenario definitions: recording the scenario today must reproduce the
// checked-in bytes exactly (after gunzip).
func TestGoldenMatchesScenario(t *testing.T) {
	for _, name := range ScenarioNames {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", name+".jsonl.gz")
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			zr, err := gzip.NewReader(f)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if _, err := want.ReadFrom(zr); err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := RecordScenario(name, &got, nil); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				divs, err := replay.CompareLogs(bytes.NewReader(want.Bytes()), bytes.NewReader(got.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				t.Fatalf("golden %s is stale (%d divergences); first: %v", name, len(divs), divs[0])
			}
		})
	}
}

// TestRecordReplayWithFaults exercises the fault-injection layer:
// recording the same scenario twice under an aggressive fault plan must
// produce byte-identical logs (every fault decision is a pure function
// of seed and event index), and replaying must be divergence-free even
// though faults fire throughout the run.
func TestRecordReplayWithFaults(t *testing.T) {
	// CancelEvery is dense (the lottery must land on request events, not
	// just ticks) and the forced shutdown hits inside the last round of
	// requests rather than the drain ticks.
	plan := &FaultPlan{
		Seed:             3,
		UnreachableEvery: 9,
		CancelEvery:      3,
		ShutdownAtEvent:  50,
	}
	var a, b bytes.Buffer
	if err := RecordScenario("uniform", &a, plan); err != nil {
		t.Fatal(err)
	}
	if err := RecordScenario("uniform", &b, plan); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		divs, err := replay.CompareLogs(bytes.NewReader(a.Bytes()), bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		t.Fatalf("two same-seed fault-injected recordings differ (%d divergences); first: %v", len(divs), divs[0])
	}

	// The plan must actually have injected something.
	log := a.String()
	if !strings.Contains(log, `"err":"canceled"`) {
		t.Fatal("cancel faults never fired")
	}
	if !strings.Contains(log, `"err":"shutdown"`) {
		t.Fatal("forced shutdown never fired")
	}

	rep, err := Replay(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged() {
		t.Fatalf("fault-injected replay diverged: first %s", rep.First())
	}
}

// TestReplayDisableCHRoundTrip pins the contraction-hierarchy knob
// through the record/replay stack: the header persists disable_ch, a
// CH-off recording replays cleanly against a CH-off rebuild, and —
// because the CH is exact — a CH-off run's event stream is byte-
// identical to a CH-on run of the same scenario apart from the header
// line itself.
func TestReplayDisableCHRoundTrip(t *testing.T) {
	record := func(disable bool) []byte {
		var buf bytes.Buffer
		sys, err := New(Options{
			SyntheticCityRows: 8,
			SyntheticCityCols: 8,
			Seed:              5,
			DisableCH:         disable,
			RecordTo:          &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		min, max := sys.Bounds()
		mid := Point{Lat: (min.Lat + max.Lat) / 2, Lng: (min.Lng + max.Lng) / 2}
		sys.AddTaxi(mid, 3)
		sys.AddTaxi(Point{Lat: min.Lat, Lng: min.Lng}, 3)
		ctx := t.Context()
		sys.SubmitRequest(ctx, Point{Lat: min.Lat, Lng: mid.Lng}, Point{Lat: max.Lat, Lng: mid.Lng}, 1.4)
		sys.SubmitRequest(ctx, mid, Point{Lat: max.Lat, Lng: max.Lng}, 1.4)
		sys.Advance(5 * 60 * 1e9)
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	off := record(true)
	if !strings.Contains(strings.SplitN(string(off), "\n", 2)[0], `"disable_ch":true`) {
		t.Fatal("header does not persist disable_ch")
	}
	rep, err := Replay(bytes.NewReader(off))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged() {
		t.Fatalf("CH-off replay diverged: first %s", rep.First())
	}

	on := record(false)
	onEvents := strings.SplitN(string(on), "\n", 2)[1]
	offEvents := strings.SplitN(string(off), "\n", 2)[1]
	if onEvents != offEvents {
		divs, err := replay.CompareLogs(bytes.NewReader(on), bytes.NewReader(off))
		if err != nil {
			t.Fatal(err)
		}
		t.Fatalf("CH on/off event streams differ (%d divergences) — the hierarchy is not exact; first: %v", len(divs), divs)
	}
}

// TestReplayDetectsTampering flips one recorded outcome and expects the
// replayer to pinpoint exactly that event.
func TestReplayDetectsTampering(t *testing.T) {
	var buf bytes.Buffer
	if err := RecordScenario("uniform", &buf, nil); err != nil {
		t.Fatal(err)
	}
	// Flip a served request's taxi assignment in the raw JSONL.
	lines := strings.Split(buf.String(), "\n")
	tampered := -1
	for i, ln := range lines {
		if strings.Contains(ln, `"request":`) && strings.Contains(ln, `"taxi":1,`) {
			lines[i] = strings.Replace(ln, `"taxi":1,`, `"taxi":7,`, 1)
			tampered = i
			break
		}
	}
	if tampered < 0 {
		t.Fatal("no request assigned to taxi 1 in the uniform scenario")
	}
	rep, err := Replay(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diverged() {
		t.Fatal("tampered log replayed clean")
	}
	first := rep.First()
	if first.Field != "request.taxi" {
		t.Fatalf("first divergence %v, want request.taxi", first)
	}
	if first.Event != int64(tampered-1) { // line 0 is the header
		t.Fatalf("divergence at event %d, tampered event %d", first.Event, tampered-1)
	}
	if first.Recorded != "7" || first.Replayed != "1" {
		t.Fatalf("divergence values %q/%q, want 7/1", first.Recorded, first.Replayed)
	}
}

// TestReplayUnsealedPrefix truncates a log mid-run (as if the recorder
// died) and expects the surviving prefix to replay clean.
func TestReplayUnsealedPrefix(t *testing.T) {
	var buf bytes.Buffer
	if err := RecordScenario("uniform", &buf, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	// Keep header + roughly half the events, dropping the metrics seal.
	prefix := strings.Join(lines[:len(lines)/2], "")
	rep, err := Replay(strings.NewReader(prefix))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged() {
		t.Fatalf("truncated log diverged: %s", rep.First())
	}
	if rep.Events == 0 {
		t.Fatal("prefix replay saw no events")
	}
}

func TestReplayRejects(t *testing.T) {
	// A sim-kind log cannot drive a System replay.
	simLog := `{"version":2,"kind":"sim","seed":1}` + "\n"
	if _, err := Replay(strings.NewReader(simLog)); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("sim log accepted: %v", err)
	}
	// A wrong graph fingerprint must refuse to diff.
	var buf bytes.Buffer
	if err := RecordScenario("uniform", &buf, nil); err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(buf.String(), `"graph_fp":"`, `"graph_fp":"ffff`, 1)
	if _, err := Replay(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("wrong fingerprint accepted: %v", err)
	}
	// Garbage is an error, not a panic.
	if _, err := Replay(strings.NewReader("not a log")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRecordScenarioUnknown(t *testing.T) {
	if err := RecordScenario("nope", &bytes.Buffer{}, nil); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestRecordToGzipRoundTrip records through a gzip writer and replays
// through the transparent gunzip path.
func TestRecordToGzipRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := RecordScenario("uniform", zw, nil); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged() {
		t.Fatalf("gzip round-trip diverged: %s", rep.First())
	}
}

// TestRecordRejectsCustomHistory pins the Options.Validate guard: a
// recorded run must be reproducible from the header alone, and a custom
// History is not serialised.
func TestRecordRejectsCustomHistory(t *testing.T) {
	_, err := New(Options{
		RecordTo: &bytes.Buffer{},
		History:  []Trip{{Origin: Point{Lat: 1}, Dest: Point{Lng: 1}}},
	})
	if err == nil {
		t.Fatal("recording with custom history accepted")
	}
}

// TestReplayShardedRoundTrip pins sharding through the record/replay
// stack: the header persists the shard topology, a sharded recording
// replays divergence-free against a sharded rebuild, and — because
// sharding is outcome-neutral — the event stream is byte-identical to an
// unsharded run of the same world apart from the header and the sealed
// metrics (which gain the per-shard counter family).
func TestReplayShardedRoundTrip(t *testing.T) {
	record := func(shards int) []byte {
		var buf bytes.Buffer
		sys, err := New(Options{
			SyntheticCityRows: 10,
			SyntheticCityCols: 10,
			Seed:              5,
			QueueDepth:        8,
			Sharding:          ShardingOptions{Shards: shards},
			RecordTo:          &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		min, max := sys.Bounds()
		mid := Point{Lat: (min.Lat + max.Lat) / 2, Lng: (min.Lng + max.Lng) / 2}
		for _, p := range []Point{mid, min, max, {Lat: min.Lat, Lng: max.Lng}} {
			sys.AddTaxi(p, 3)
		}
		ctx := t.Context()
		sys.SubmitRequest(ctx, Point{Lat: min.Lat, Lng: mid.Lng}, Point{Lat: max.Lat, Lng: mid.Lng}, 1.5)
		sys.SubmitRequest(ctx, mid, Point{Lat: max.Lat, Lng: max.Lng}, 1.5)
		sys.SubmitRequest(ctx, Point{Lat: max.Lat, Lng: min.Lng}, mid, 1.5)
		sys.Advance(3 * 60 * 1e9)
		sys.SubmitRequest(ctx, Point{Lat: mid.Lat, Lng: min.Lng}, Point{Lat: mid.Lat, Lng: max.Lng}, 1.6)
		sys.Advance(5 * 60 * 1e9)
		if shards > 1 {
			if got := sys.Stats().Shards; got != shards {
				t.Fatalf("Stats().Shards = %d, want %d", got, shards)
			}
			per := sys.ShardStats()
			if len(per) != shards {
				t.Fatalf("ShardStats() returned %d entries, want %d", len(per), shards)
			}
			taxis := 0
			for _, sh := range per {
				taxis += sh.Taxis
			}
			if taxis != 4 {
				t.Fatalf("shard fleets sum to %d taxis, want 4", taxis)
			}
		}
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	sharded := record(2)
	header := strings.SplitN(string(sharded), "\n", 2)[0]
	if !strings.Contains(header, `"shards":2`) {
		t.Fatalf("header does not persist shard topology: %s", header)
	}
	if !strings.Contains(string(sharded), "mtshare_shard_requests_total") {
		t.Fatal("sealed metrics missing the per-shard counter family")
	}
	rep, err := Replay(bytes.NewReader(sharded))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged() {
		t.Fatalf("sharded replay diverged: first %s", rep.First())
	}
	if rep.Events == 0 {
		t.Fatal("sharded replay saw no events")
	}

	single := record(0)
	outcomes := func(log []byte) string {
		var keep []string
		for i, ln := range strings.Split(string(log), "\n") {
			if i == 0 || strings.Contains(ln, `"metrics":`) {
				continue
			}
			keep = append(keep, ln)
		}
		return strings.Join(keep, "\n")
	}
	if outcomes(sharded) != outcomes(single) {
		t.Fatal("sharded and unsharded event streams differ — sharding is not outcome-neutral")
	}
}

// TestReplayV2HeaderBackCompat rewrites a fresh recording's header to the
// previous log version: Replay must accept it and re-emit the recorded
// version, so version-2 goldens keep diffing byte for byte against a
// version-3 build.
func TestReplayV2HeaderBackCompat(t *testing.T) {
	var buf bytes.Buffer
	if err := RecordScenario("uniform", &buf, nil); err != nil {
		t.Fatal(err)
	}
	log := buf.String()
	if !strings.HasPrefix(log, `{"version":3,`) {
		t.Fatalf("fresh recording is not version 3: %s", strings.SplitN(log, "\n", 2)[0])
	}
	v2 := strings.Replace(log, `{"version":3,`, `{"version":2,`, 1)
	rep, err := Replay(strings.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged() {
		t.Fatalf("version-2 log diverged on a version-3 build: first %s", rep.First())
	}
	if rep.Events == 0 {
		t.Fatal("version-2 replay saw no events")
	}

	// Versions outside [2, 3] must be refused.
	for _, bad := range []string{`{"version":1,`, `{"version":4,`} {
		mangled := strings.Replace(log, `{"version":3,`, bad, 1)
		if _, err := Replay(strings.NewReader(mangled)); err == nil {
			t.Fatalf("header %s... accepted", bad)
		}
	}
}
