#!/usr/bin/env bash
# benchgate.sh — compare fresh benchmark runs against the committed
# baselines and gate on gross regressions.
#
# Usage: scripts/benchgate.sh [baseline.txt] [current.txt]
#
# With no arguments, runs both benchmark families itself and compares
# each against its committed baseline:
#
#   - Dispatch benchmarks (./internal/match, -bench=Dispatch) against
#     testdata/bench/dispatch_baseline.txt — the end-to-end dispatch hot
#     path, including BenchmarkDispatchCH's ch=on/ch=off split.
#   - Contraction-hierarchy benchmarks (./internal/roadnet, -bench=CH)
#     against testdata/bench/roadnet_ch_baseline.txt — CH preprocessing
#     (BenchmarkCHBuild) and Chengdu-scale (~214k vertex) routing queries
#     per backend (BenchmarkChengduCHRouting). The first roadnet run
#     pays the one-time ~2.5-minute hierarchy build; -count reuses it.
#   - WAL benchmarks (./internal/wal, -bench=WAL) against
#     testdata/bench/wal_baseline.txt — append throughput across the
#     group-commit spectrum (fsync every record / every 64 / never) and
#     the snapshot write/restore paths. fsync latency is the most
#     machine-sensitive number in the suite, which is exactly why the
#     geomean gate (not per-benchmark deltas) decides.
#
# With two arguments, compares just that pair (for by-hand use).
#
# Policy: per-benchmark slowdowns are WARNINGS only — absolute ns/op is
# machine-dependent, and the committed baselines were recorded on one
# specific box. A gate fails (exit 1) only when the geometric mean of
# the per-benchmark time ratios exceeds 1.30 — a uniform >30% slowdown
# is an engine regression, not machine noise.
#
# If benchstat is on PATH, its statistical summary is printed too
# (informational; the awk gate below is what decides pass/fail).
set -u -o pipefail

compare() {
    local baseline="$1" current="$2"

    if command -v benchstat >/dev/null 2>&1; then
        echo
        echo "== benchstat (informational) =="
        benchstat "$baseline" "$current" || true
        echo
    fi

    # Mean ns/op per benchmark from `go test -bench` output lines:
    #   BenchmarkName-8   <iters>  <ns> ns/op  [extra metrics...]
    awk -v threshold=1.30 '
    function meanof(sum, n) { return n > 0 ? sum / n : 0 }
    FNR == 1 { file++ }
    /^Benchmark/ && / ns\/op/ {
        name = $1
        sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix so runs from different core counts compare
        for (i = 2; i <= NF; i++) {
            if ($(i+1) == "ns/op") { ns = $i; break }
        }
        if (file == 1) { bsum[name] += ns; bn[name]++ }
        else           { csum[name] += ns; cn[name]++; seen[name] = 1 }
    }
    END {
        worst = 0; prod = 1; k = 0
        for (name in seen) {
            if (!(name in bsum)) {
                printf "NEW      %-50s %12.0f ns/op (no baseline)\n", name, meanof(csum[name], cn[name])
                continue
            }
            b = meanof(bsum[name], bn[name]); c = meanof(csum[name], cn[name])
            r = b > 0 ? c / b : 1
            prod *= r; k++
            flag = (r > threshold) ? "WARN>30%" : ((r > 1.05) ? "slower" : "ok")
            printf "%-8s %-50s %12.0f -> %12.0f ns/op  (x%.2f)\n", flag, name, b, c, r
            if (r > worst) worst = r
        }
        if (k == 0) { print "benchgate: no overlapping benchmarks — nothing to compare" > "/dev/stderr"; exit 2 }
        geomean = exp(log(prod) / k)
        printf "\nbenchgate: geomean ratio x%.3f over %d benchmarks (worst x%.2f, gate x%.2f)\n", geomean, k, worst, threshold
        if (geomean > threshold) {
            print "benchgate: FAIL — uniform slowdown beyond 30%; investigate before merging" > "/dev/stderr"
            exit 1
        }
        print "benchgate: OK (per-benchmark slowdowns above are warnings only)"
    }' "$baseline" "$current"
}

gate() {
    local baseline="$1" pkg="$2" pattern="$3" regen="$4"
    if [[ ! -f "$baseline" ]]; then
        echo "benchgate: baseline $baseline missing" >&2
        echo "regenerate with: $regen" >&2
        exit 2
    fi
    local current rc
    current="$(mktemp)"
    echo "benchgate: running $pkg -bench=$pattern (count=5)..." >&2
    go test -run '^$' -bench="$pattern" -count=5 -benchtime=50x -timeout 30m "$pkg" | tee "$current"
    compare "$baseline" "$current"
    rc=$?
    rm -f "$current"
    return $rc
}

if [[ $# -ge 2 ]]; then
    compare "$1" "$2"
    exit $?
fi

rc=0
gate "${1:-testdata/bench/dispatch_baseline.txt}" ./internal/match/ Dispatch \
    "go test -run '^\$' -bench=Dispatch -count=5 -benchtime=50x ./internal/match/ > testdata/bench/dispatch_baseline.txt" || rc=1
gate testdata/bench/roadnet_ch_baseline.txt ./internal/roadnet/ CH \
    "go test -run '^\$' -bench=CH -count=5 -benchtime=50x -timeout 30m ./internal/roadnet/ > testdata/bench/roadnet_ch_baseline.txt" || rc=1
gate testdata/bench/wal_baseline.txt ./internal/wal/ WAL \
    "go test -run '^\$' -bench=WAL -count=5 -benchtime=50x ./internal/wal/ > testdata/bench/wal_baseline.txt" || rc=1
exit $rc
