#!/usr/bin/env bash
# benchgate.sh — compare a fresh Dispatch benchmark run against the
# committed baseline and gate on gross regressions.
#
# Usage: scripts/benchgate.sh [baseline.txt] [current.txt]
#
# With no arguments, runs `go test -bench=Dispatch -count=5` itself and
# compares against testdata/bench/dispatch_baseline.txt.
#
# Policy: per-benchmark slowdowns are WARNINGS only — absolute ns/op is
# machine-dependent, and the committed baseline was recorded on one
# specific box. The gate fails (exit 1) only when the geometric mean of
# the per-benchmark time ratios exceeds 1.30 — a uniform >30% slowdown
# is an engine regression, not machine noise.
#
# If benchstat is on PATH, its statistical summary is printed too
# (informational; the awk gate below is what decides pass/fail).
set -u -o pipefail

baseline="${1:-testdata/bench/dispatch_baseline.txt}"
current="${2:-}"

if [[ ! -f "$baseline" ]]; then
    echo "benchgate: baseline $baseline missing" >&2
    echo "regenerate with: go test -run '^\$' -bench=Dispatch -count=5 -benchtime=50x ./internal/match/ > $baseline" >&2
    exit 2
fi

if [[ -z "$current" ]]; then
    current="$(mktemp)"
    trap 'rm -f "$current"' EXIT
    echo "benchgate: running Dispatch benchmarks (count=5)..." >&2
    go test -run '^$' -bench=Dispatch -count=5 -benchtime=50x ./internal/match/ | tee "$current"
fi

if command -v benchstat >/dev/null 2>&1; then
    echo
    echo "== benchstat (informational) =="
    benchstat "$baseline" "$current" || true
    echo
fi

# Mean ns/op per benchmark from `go test -bench` output lines:
#   BenchmarkName-8   <iters>  <ns> ns/op  [extra metrics...]
awk -v threshold=1.30 '
function meanof(sum, n) { return n > 0 ? sum / n : 0 }
FNR == 1 { file++ }
/^Benchmark/ && / ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix so runs from different core counts compare
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op") { ns = $i; break }
    }
    if (file == 1) { bsum[name] += ns; bn[name]++ }
    else           { csum[name] += ns; cn[name]++; seen[name] = 1 }
}
END {
    worst = 0; prod = 1; k = 0; fail = 0
    for (name in seen) {
        if (!(name in bsum)) {
            printf "NEW      %-50s %12.0f ns/op (no baseline)\n", name, meanof(csum[name], cn[name])
            continue
        }
        b = meanof(bsum[name], bn[name]); c = meanof(csum[name], cn[name])
        r = b > 0 ? c / b : 1
        prod *= r; k++
        flag = (r > threshold) ? "WARN>30%" : ((r > 1.05) ? "slower" : "ok")
        printf "%-8s %-50s %12.0f -> %12.0f ns/op  (x%.2f)\n", flag, name, b, c, r
        if (r > worst) worst = r
    }
    if (k == 0) { print "benchgate: no overlapping benchmarks — nothing to compare" > "/dev/stderr"; exit 2 }
    geomean = exp(log(prod) / k)
    printf "\nbenchgate: geomean ratio x%.3f over %d benchmarks (worst x%.2f, gate x%.2f)\n", geomean, k, worst, threshold
    if (geomean > threshold) {
        print "benchgate: FAIL — uniform slowdown beyond 30%; investigate before merging" > "/dev/stderr"
        exit 1
    }
    print "benchgate: OK (per-benchmark slowdowns above are warnings only)"
}' "$baseline" "$current"
