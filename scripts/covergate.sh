#!/usr/bin/env bash
# covergate.sh — merged statement coverage over the dispatch core
# (internal/match + internal/fleet + internal/roadnet +
# internal/partition) plus the durability layer (internal/replay +
# internal/wal) with a hard floor.
#
# Usage: scripts/covergate.sh [floor-percent]
#
# Runs the packages' tests with a combined -coverpkg so cross-package
# coverage counts (roadnet statements exercised by match tests and vice
# versa), merges the profiles go test already writes per package, and
# fails when the combined total drops below the floor.
#
# The floor held when the sharding PR folded internal/partition into
# the gated set (measured 93.7%), and again when the durability PR
# folded in internal/replay and internal/wal. Raise it when coverage
# rises; never lower it to make a PR pass — write the missing tests
# instead.
set -euo pipefail

floor="${1:-90.0}"
profile="$(mktemp)"
trap 'rm -f "$profile"' EXIT

echo "covergate: running match+fleet+roadnet+partition+replay+wal tests with merged coverage..." >&2
go test -count=1 \
    -coverpkg=./internal/match/...,./internal/fleet/...,./internal/roadnet/...,./internal/partition/...,./internal/replay/...,./internal/wal/... \
    -coverprofile="$profile" \
    ./internal/match/... ./internal/fleet/... ./internal/roadnet/... ./internal/partition/... ./internal/replay/... ./internal/wal/...

total="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')"
if [[ -z "$total" ]]; then
    echo "covergate: could not parse total coverage" >&2
    exit 2
fi

echo "covergate: combined match+fleet+roadnet+partition+replay+wal coverage ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 < f+0) }' && {
    echo "covergate: FAIL — coverage ${total}% is below the ${floor}% floor" >&2
    exit 1
}
echo "covergate: OK"
