// Quickstart: build an mT-Share system over a synthetic city, register a
// small fleet, submit a few ride requests, and watch the shared rides
// complete.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	mtshare "repro"
)

func main() {
	sys, err := mtshare.New(mtshare.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("city ready: %d intersections, %d road segments, %d partitions\n",
		st.RoadVertices, st.RoadEdges, st.Partitions)

	// Place a small fleet on a diagonal across the city.
	min, max := sys.Bounds()
	point := func(fLat, fLng float64) mtshare.Point {
		return mtshare.Point{
			Lat: min.Lat + fLat*(max.Lat-min.Lat),
			Lng: min.Lng + fLng*(max.Lng-min.Lng),
		}
	}
	for i := 0; i < 5; i++ {
		f := 0.15 + 0.7*float64(i)/4
		id, err := sys.AddTaxi(point(f, f), 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("taxi %d on duty near (%.2f, %.2f)\n", id, f, f)
	}

	// Two passengers along the same corridor: mT-Share should pool them.
	ctx := context.Background()
	a1, err := sys.SubmitRequest(ctx, point(0.2, 0.2), point(0.85, 0.85), 1.5)
	if err != nil {
		log.Fatalf("request 1 unserved: %v", err)
	}
	fmt.Printf("request %d -> taxi %d, pickup in %v, dropoff in %v (examined %d candidates, detour %.0f m)\n",
		a1.Request, a1.Taxi, a1.PickupETA.Round(time.Second), a1.DropoffETA.Round(time.Second),
		a1.CandidateTaxis, a1.DetourMeters)

	a2, err := sys.SubmitRequest(ctx, point(0.3, 0.3), point(0.7, 0.7), 1.6)
	if err != nil {
		log.Fatalf("request 2 unserved: %v", err)
	}
	fmt.Printf("request %d -> taxi %d (shared ride: %v)\n", a2.Request, a2.Taxi, a1.Taxi == a2.Taxi)

	// Drive the world until both rides complete.
	deliveries := 0
	for tick := 0; tick < 2000 && deliveries < 2; tick++ {
		for _, ev := range sys.Advance(5 * time.Second) {
			kind := "delivered"
			if ev.Pickup {
				kind = "picked up"
			}
			fmt.Printf("t=%-8v taxi %d %s request %d\n", ev.At.Round(time.Second), ev.Taxi, kind, ev.Request)
			if !ev.Pickup {
				deliveries++
			}
		}
	}
	if deliveries < 2 {
		log.Fatal("rides did not complete")
	}
	fmt.Println("all passengers delivered")
}
