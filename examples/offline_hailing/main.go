// Offline hailing: the non-peak scenario. A third of the passengers never
// open the app — they hail at the roadside and are invisible to the
// dispatcher until a taxi passes them. mT-Share_pro's probabilistic
// routing and demand-seeking cruising make those encounters much more
// likely; this example compares it against plain mT-Share on the same
// workload (the paper's Figs. 10 and 16).
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/match"
	"repro/internal/sim"
)

func main() {
	scale := experiments.QuickScale()
	world, err := experiments.BuildWorld(scale)
	if err != nil {
		log.Fatal(err)
	}
	reqs := world.Requests(experiments.NonPeakWindow(), scale.Rho, scale.OfflineFrac)
	offline := 0
	for _, r := range reqs {
		if r.Offline {
			offline++
		}
	}
	fmt.Printf("non-peak hour: %d requests, %d of them street hails invisible to the server\n\n",
		len(reqs), offline)

	pt, err := world.Partitioning("bipartite", scale.Kappa)
	if err != nil {
		log.Fatal(err)
	}
	for _, probabilistic := range []bool{false, true} {
		cfg := match.DefaultConfig()
		cfg.SearchRangeMeters = scale.GammaMeters
		eng, err := match.NewEngine(pt, world.Spx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		scheme := match.NewScheme(eng, probabilistic)
		simEng, err := sim.NewEngine(world.G, scheme, sim.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		start := experiments.NonPeakWindow().From.Seconds()
		simEng.PlaceTaxis(scale.DefaultTaxis, scale.Capacity, scale.Seed, start)
		m := simEng.Run(clone(reqs), start)
		fmt.Printf("%-14s served %3d total | %3d online | %3d offline street hails | response %.2f ms\n",
			scheme.Name()+":", m.Served, m.ServedOnline, m.ServedOffline, m.MeanResponseMs)
	}
	fmt.Println("\npaper reference: probabilistic routing serves 34-89% more offline requests")
	fmt.Println("at 2.5-4.5x the response time (Figs. 11 and 16).")
}

func clone(reqs []*fleet.Request) []*fleet.Request {
	out := make([]*fleet.Request, len(reqs))
	for i, r := range reqs {
		c := *r
		out[i] = &c
	}
	return out
}
