// Fare split: a walkthrough of the mT-Share payment model (§IV-D). Three
// passengers share one taxi; the ridesharing benefit — what the group
// saves versus three separate taxis — is split between the driver and the
// passengers in proportion to each passenger's detour.
package main

import (
	"fmt"
	"log"

	mtshare "repro"
)

func main() {
	sys, err := mtshare.New(mtshare.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// A shared trip: the taxi drove 11.2 km in total while carrying
	// (subsets of) three passengers whose individual shortest paths and
	// actually-ridden distances are:
	rides := []mtshare.SharedRide{
		{DirectMeters: 7000, RiddenMeters: 8400}, // 20% detour
		{DirectMeters: 5000, RiddenMeters: 5500}, // 10% detour
		{DirectMeters: 4000, RiddenMeters: 4000}, // no detour
	}
	const routeMeters = 11200

	s := sys.FareQuote(routeMeters, rides)
	fmt.Println("mT-Share payment model (beta=0.80 passenger share, eta=0.01 base rate)")
	fmt.Printf("shared route: %.1f km -> route fare %.2f\n", routeMeters/1000.0, s.RouteFare)
	var regular float64
	for i, r := range rides {
		fmt.Printf("passenger %d: direct %.1f km, rode %.1f km (%.0f%% detour)\n",
			i+1, r.DirectMeters/1000, r.RiddenMeters/1000,
			(r.RiddenMeters/r.DirectMeters-1)*100)
	}
	fmt.Printf("\nridesharing benefit B = sum(regular fares) - route fare = %.2f\n", s.Benefit)
	fmt.Printf("driver collects route fare + 20%% of B = %.2f\n\n", s.DriverIncome)
	fmt.Printf("%-12s %10s %10s %10s\n", "passenger", "regular", "pays", "saves")
	for i := range rides {
		reg := s.Fares[i] + s.Savings[i]
		regular += reg
		fmt.Printf("passenger %d %10.2f %10.2f %10.2f\n", i+1, reg, s.Fares[i], s.Savings[i])
	}
	var paid float64
	for _, f := range s.Fares {
		paid += f
	}
	fmt.Printf("\ngroup pays %.2f instead of %.2f (%.1f%% saved); the largest detour earns the largest rebate\n",
		paid, regular, (1-paid/regular)*100)
	fmt.Println("paper reference: at rho=1.3 passengers save 8.6% while drivers earn 7.8% more (Fig. 19)")
}
