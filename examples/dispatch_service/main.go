// Dispatch service: boots the mT-Share HTTP dispatch service in-process,
// registers a taxi, submits ride requests and a street hail over the JSON
// API, and polls until the rides complete — the full request lifecycle a
// client app would drive.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/server"
)

func main() {
	srv, err := server.New(server.Config{
		CityRows: 20, CityCols: 20,
		InitialTaxis: 15, Capacity: 3,
		Speedup:       600, // 10 simulated minutes per wall second
		Probabilistic: true,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("dispatch service listening on", ts.URL)

	// Discover a taxi position to anchor the demo geography.
	var taxis []struct {
		ID       int64 `json:"id"`
		Position struct {
			Lat float64 `json:"lat"`
			Lng float64 `json:"lng"`
		} `json:"position"`
	}
	getJSON(ts.URL+"/api/taxis", &taxis)
	fmt.Printf("fleet: %d taxis on duty\n", len(taxis))
	anchor := taxis[0]

	// An online request near the first taxi.
	var resp struct {
		ID     int64 `json:"id"`
		Served bool  `json:"served"`
		TaxiID int64 `json:"taxi_id"`
	}
	postJSON(ts.URL+"/api/requests", map[string]interface{}{
		"pickup":  map[string]float64{"lat": anchor.Position.Lat, "lng": anchor.Position.Lng},
		"dropoff": map[string]float64{"lat": anchor.Position.Lat + 0.01, "lng": anchor.Position.Lng + 0.01},
		"rho":     1.6,
	}, &resp)
	if !resp.Served {
		log.Fatal("online request not served")
	}
	fmt.Printf("online request %d assigned to taxi %d\n", resp.ID, resp.TaxiID)

	// A street hail reported by that same taxi's driver.
	var hail struct {
		ID     int64 `json:"id"`
		Served bool  `json:"served"`
		TaxiID int64 `json:"taxi_id"`
	}
	postJSON(ts.URL+"/api/hails", map[string]interface{}{
		"taxi_id": resp.TaxiID,
		"pickup":  map[string]float64{"lat": anchor.Position.Lat + 0.002, "lng": anchor.Position.Lng + 0.002},
		"dropoff": map[string]float64{"lat": anchor.Position.Lat + 0.009, "lng": anchor.Position.Lng + 0.009},
		"rho":     1.8,
	}, &hail)
	fmt.Printf("street hail %d served=%v by taxi %d\n", hail.ID, hail.Served, hail.TaxiID)

	// Poll until the online ride completes (the world runs 600x).
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st struct {
			Delivered bool    `json:"delivered"`
			PickedUp  bool    `json:"picked_up"`
			Fare      float64 `json:"fare_estimate"`
		}
		getJSON(fmt.Sprintf("%s/api/requests?id=%d", ts.URL, resp.ID), &st)
		if st.Delivered {
			fmt.Printf("request %d delivered, fare %.2f\n", resp.ID, st.Fare)
			break
		}
		time.Sleep(200 * time.Millisecond)
	}

	var stats map[string]interface{}
	getJSON(ts.URL+"/api/stats", &stats)
	fmt.Printf("stats: sim_seconds=%.0f served=%v dispatches=%v cruise_plans=%v\n",
		stats["sim_seconds"], stats["served"], stats["dispatches"], stats["cruise_plans"])
}

func getJSON(url string, v interface{}) {
	r, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func postJSON(url string, body, v interface{}) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Fatal(err)
	}
	r, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
