// Peak hour: replay a synthetic morning-rush workload against mT-Share
// and the paper's baselines (No-Sharing, T-Share, pGreedyDP), printing the
// head-to-head serving, response-time, detour, and waiting metrics of the
// paper's peak scenario (Figs. 6-9).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/baseline"
	"repro/internal/dispatch"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/match"
	"repro/internal/sim"
)

func main() {
	scale := experiments.QuickScale()
	scale.PeakTripsPerHour = 500
	fmt.Println("building the experiment world (synthetic city + mined mobility patterns)...")
	world, err := experiments.BuildWorld(scale)
	if err != nil {
		log.Fatal(err)
	}
	reqs := world.Requests(experiments.PeakWindow(), scale.Rho, 0)
	fmt.Printf("peak hour: %d requests on %d road vertices\n\n", len(reqs), world.G.NumVertices())

	pt, err := world.Partitioning("bipartite", scale.Kappa)
	if err != nil {
		log.Fatal(err)
	}
	mcfg := match.DefaultConfig()
	mcfg.SearchRangeMeters = scale.GammaMeters
	bcfg := baseline.DefaultConfig()
	bcfg.SearchRangeMeters = scale.GammaMeters

	build := map[string]func() dispatch.Scheme{
		"No-Sharing": func() dispatch.Scheme { return baseline.NewNoSharing(world.G, bcfg) },
		"T-Share":    func() dispatch.Scheme { return baseline.NewTShare(world.G, bcfg) },
		"pGreedyDP":  func() dispatch.Scheme { return baseline.NewPGreedyDP(world.G, bcfg) },
		"mT-Share": func() dispatch.Scheme {
			eng, err := match.NewEngine(pt, world.Spx, mcfg)
			if err != nil {
				log.Fatal(err)
			}
			return match.NewScheme(eng, false)
		},
	}
	order := []string{"No-Sharing", "T-Share", "pGreedyDP", "mT-Share"}

	fmt.Printf("%-12s %8s %12s %12s %12s %12s\n",
		"scheme", "served", "resp (ms)", "detour (min)", "wait (min)", "candidates")
	for _, name := range order {
		scheme := build[name]()
		eng, err := sim.NewEngine(world.G, scheme, sim.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		start := experiments.PeakWindow().From.Seconds()
		eng.PlaceTaxis(scale.DefaultTaxis, scale.Capacity, scale.Seed, start)
		t0 := time.Now()
		m := eng.Run(cloneRequests(reqs), start)
		fmt.Printf("%-12s %8d %12.2f %12.2f %12.2f %12.1f   (run %v)\n",
			name, m.Served, m.MeanResponseMs, m.MeanDetourMin, m.MeanWaitingMin,
			m.MeanCandidates, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Println("\npaper reference (Chengdu, 29.5k requests, 3000 taxis): mT-Share serves the most,")
	fmt.Println("responds in milliseconds, and keeps detours near T-Share's minimum (Figs. 6-9).")
}

// cloneRequests deep-copies the request set so each scheme starts from
// identical state.
func cloneRequests(reqs []*fleet.Request) []*fleet.Request {
	out := make([]*fleet.Request, len(reqs))
	for i, r := range reqs {
		c := *r
		out[i] = &c
	}
	return out
}
