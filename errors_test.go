package mtshare

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestSentinelWrapping pins the contract documented on errors.go: the
// sentinels must survive errors.Is through arbitrarily deep fmt-style
// wrapping, stay distinct from each other, and carry the package prefix
// in their message.
func TestSentinelWrapping(t *testing.T) {
	sentinels := []struct {
		name string
		err  error
	}{
		{"ErrNoTaxiAvailable", ErrNoTaxiAvailable},
		{"ErrQueued", ErrQueued},
		{"ErrQueueFull", ErrQueueFull},
		{"ErrInvalidRequest", ErrInvalidRequest},
		{"ErrUnknownTaxi", ErrUnknownTaxi},
		{"ErrInvalidOptions", ErrInvalidOptions},
		{"ErrShutdown", ErrShutdown},
	}
	for _, s := range sentinels {
		t.Run(s.name, func(t *testing.T) {
			if !strings.HasPrefix(s.err.Error(), "mtshare: ") {
				t.Fatalf("message %q lacks the package prefix", s.err.Error())
			}
			// One and two levels of %w wrapping, as the facade produces.
			once := fmt.Errorf("%w: taxi 42", s.err)
			twice := fmt.Errorf("dispatch failed: %w", once)
			for _, wrapped := range []error{s.err, once, twice} {
				if !errors.Is(wrapped, s.err) {
					t.Fatalf("errors.Is(%v, %s) = false", wrapped, s.name)
				}
			}
			// Sentinels must not match each other.
			for _, other := range sentinels {
				if other.name != s.name && errors.Is(once, other.err) {
					t.Fatalf("wrapped %s matches %s", s.name, other.name)
				}
			}
		})
	}
}

// TestFacadeErrorsMatchSentinels exercises the real error paths through
// the facade and checks each one wraps the documented sentinel (the
// returned errors carry situational detail, so direct equality would
// fail — errors.Is must not).
func TestFacadeErrorsMatchSentinels(t *testing.T) {
	s, err := New(Options{SyntheticCityRows: 8, SyntheticCityCols: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	min, max := s.Bounds()
	mid := Point{Lat: (min.Lat + max.Lat) / 2, Lng: (min.Lng + max.Lng) / 2}
	if _, err := s.AddTaxi(mid, 3); err != nil {
		t.Fatal(err)
	}

	if _, err := s.SubmitRequest(ctx, mid, mid, 1.3); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("degenerate endpoints: %v, want ErrInvalidRequest", err)
	}
	if _, err := s.SubmitRequest(ctx, min, max, 1.0); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("flexibility below minimum: %v, want ErrInvalidRequest", err)
	}
	if _, err := s.ReportStreetHail(ctx, 9999, min, max, 1.5); !errors.Is(err, ErrUnknownTaxi) {
		t.Fatalf("unknown taxi: %v, want ErrUnknownTaxi", err)
	}
	if _, err := s.Taxi(9999); !errors.Is(err, ErrUnknownTaxi) {
		t.Fatalf("status of unknown taxi: %v, want ErrUnknownTaxi", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTaxi(mid, 3); !errors.Is(err, ErrShutdown) {
		t.Fatalf("AddTaxi after Close: %v, want ErrShutdown", err)
	}
	if _, err := s.SubmitRequest(ctx, min, max, 1.3); !errors.Is(err, ErrShutdown) {
		t.Fatalf("SubmitRequest after Close: %v, want ErrShutdown", err)
	}
	if _, err := s.ReportStreetHail(ctx, 1, min, max, 1.5); !errors.Is(err, ErrShutdown) {
		t.Fatalf("ReportStreetHail after Close: %v, want ErrShutdown", err)
	}
}

// TestOptionsValidateRejections enumerates every field Validate guards
// and requires each bad value to be rejected with ErrInvalidOptions
// (and a message naming the offending value), while the zero value and
// the defaults pass.
func TestOptionsValidateRejections(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}

	cases := []struct {
		name string
		opts Options
		want string // substring of the error message
	}{
		{"negative rows", Options{SyntheticCityRows: -1}, "negative"},
		{"negative cols", Options{SyntheticCityCols: -3}, "negative"},
		{"degenerate rows", Options{SyntheticCityRows: 1}, "at least 2x2"},
		{"degenerate cols", Options{SyntheticCityCols: 1}, "at least 2x2"},
		{"negative partitions", Options{Partitions: -2}, "partitions"},
		{"negative speed", Options{SpeedKmh: -40}, "speed"},
		{"negative search range", Options{SearchRangeMeters: -500}, "search range"},
		{"negative direction tolerance", Options{MaxDirectionDiffDegrees: -10}, "direction"},
		{"direction tolerance over 180", Options{MaxDirectionDiffDegrees: 181}, "direction"},
		{"negative trace sampling", Options{TraceSampleEvery: -1}, "trace sample"},
		{"negative queue depth", Options{QueueDepth: -4}, "queue depth"},
		{"negative retry interval", Options{QueueDepth: 8, RetryEveryTicks: -1}, "retry interval"},
		{"retry without queue", Options{RetryEveryTicks: 2}, "QueueDepth"},
		{"recording with custom history", Options{
			RecordTo: &bytes.Buffer{},
			History:  []Trip{{Origin: Point{Lat: 1}, Dest: Point{Lng: 1}}},
		}, "not serialised"},
		{"negative fault cadence", Options{
			Faults: &FaultPlan{UnreachableEvery: -1},
		}, "fault plan"},
		{"spike cadence without duration", Options{
			Faults: &FaultPlan{LatencySpikeEvery: 5},
		}, "fault plan"},
		{"negative shutdown event", Options{
			Faults: &FaultPlan{ShutdownAtEvent: -7},
		}, "fault plan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if err == nil {
				t.Fatalf("%+v accepted", tc.opts)
			}
			if !errors.Is(err, ErrInvalidOptions) {
				t.Fatalf("error %v does not wrap ErrInvalidOptions", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err.Error(), tc.want)
			}
			// New must refuse the same options.
			if _, err := New(tc.opts); !errors.Is(err, ErrInvalidOptions) {
				t.Fatalf("New(%+v) = %v, want ErrInvalidOptions", tc.opts, err)
			}
		})
	}
}
